//! World setup: spawn one thread per rank, hand each a world communicator,
//! join, and return the per-rank results.
//!
//! This is also where fault tolerance is anchored. A world owns the
//! **failed-rank set** (who has died, in failure order), the optional
//! **fault plan** (deterministic injected crashes/drops/delays, see
//! [`netsim::FaultPlan`]), the **hang watchdog** (a monitor thread that
//! detects no-progress and fails the job with a per-rank report instead of
//! hanging), and the **agreement table** backing the ULFM-style
//! `Comm::agree`/`Comm::shrink` primitives. Rank death — injected, guest
//! trap, resource limit, or panic — funnels through [`World::fail_rank`],
//! which sweeps every mailbox so anything depending on the dead rank
//! completes with `MpiError::RankFailed` instead of blocking forever.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use netsim::fault::{FaultPlan, WireFault};
use obs::{EventKind, Recorder};
use parking_lot::{Condvar, Mutex};

use crate::clock::{Clock, ClockMode};
use crate::coll_algo::CollTuning;
use crate::comm::Comm;
use crate::error::MpiError;
use crate::message::Mailbox;
use crate::progress::{ProtocolConfig, ProtocolStats};

/// Default per-rank thread stack. Deep guest recursion in debug builds
/// needs room, so ordinary worlds keep the historical 32 MiB.
pub const DEFAULT_STACK_BYTES: usize = 32 << 20;

/// A sensible [`WorldConfig::with_stack_size`] value for netsim-clock
/// worlds running native (non-guest) rank bodies: at 4096 ranks the
/// default stack would reserve 128 GiB of address space; this keeps the
/// whole world's stacks within a gigabyte.
pub const SMALL_STACK_BYTES: usize = 192 * 1024;

/// The flight-recorder hookup of a world. The clock mode is resolved
/// *once* here (`virt`) so every trace timestamp costs a single branch
/// instead of re-deriving the mode from `ClockMode` per event — the event
/// sink caches what `Clock::wtime` would otherwise re-match in hot loops.
pub(crate) struct WorldTrace {
    pub rec: Arc<Recorder>,
    pub virt: bool,
}

/// Per-rank liveness and diagnostics, updated lock-free on the MPI path.
pub(crate) struct RankHealth {
    /// Latched once the rank dies; checked by peers on their hot paths.
    pub failed: AtomicBool,
    /// The rank's body returned normally.
    pub done: AtomicBool,
    /// MPI calls issued so far (watchdog report + `CrashAtCall` faults).
    pub calls: AtomicU64,
    /// Label of the MPI call the rank most recently entered.
    pub op: Mutex<&'static str>,
}

impl RankHealth {
    fn new() -> RankHealth {
        RankHealth {
            failed: AtomicBool::new(false),
            done: AtomicBool::new(false),
            calls: AtomicU64::new(0),
            op: Mutex::new("startup"),
        }
    }
}

/// Runtime state of an attached fault plan: the plan itself plus the
/// per-directed-pair message counters that key its drop/delay decisions.
pub(crate) struct FaultState {
    plan: FaultPlan,
    pair_seq: Mutex<HashMap<(u32, u32), u64>>,
}

/// One in-flight `Comm::agree` round. Frozen (`done`) exactly once — when
/// every group member has either contributed or failed — so every
/// participant reads the same value and the same failed set.
struct AgreeSlot {
    group: Arc<Vec<u32>>,
    value: u32,
    arrived: Vec<bool>,
    done: bool,
    /// World ranks of failed group members, snapshotted at freeze time.
    failed: Vec<u32>,
}

/// Hang-watchdog tuning. The watchdog declares the world stuck when the
/// global progress counter stops moving for `wall_timeout` (both clock
/// modes — blocked ranks make no progress regardless of how time is
/// measured), or, in virtual mode, when any rank's simulated clock passes
/// `virtual_budget_us`. On firing it stores a per-rank report, emits a
/// `WatchdogFired` trace event, invokes `on_fire`, and shuts the world
/// down so every blocked rank returns an error instead of hanging.
#[derive(Clone)]
pub struct WatchdogConfig {
    pub wall_timeout: Duration,
    pub virtual_budget_us: Option<f64>,
    pub poll_interval: Duration,
    pub on_fire: Option<Arc<dyn Fn(&str) + Send + Sync>>,
}

impl std::fmt::Debug for WatchdogConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchdogConfig")
            .field("wall_timeout", &self.wall_timeout)
            .field("virtual_budget_us", &self.virtual_budget_us)
            .field("poll_interval", &self.poll_interval)
            .field("on_fire", &self.on_fire.as_ref().map(|_| "<callback>"))
            .finish()
    }
}

impl WatchdogConfig {
    /// A watchdog that fires after `wall_timeout` without progress.
    pub fn wall(wall_timeout: Duration) -> WatchdogConfig {
        WatchdogConfig {
            wall_timeout,
            virtual_budget_us: None,
            poll_interval: Duration::from_millis(10).min(wall_timeout / 4).max(Duration::from_millis(1)),
            on_fire: None,
        }
    }

    /// Add a simulated-time budget (virtual-clock worlds).
    pub fn with_virtual_budget_us(mut self, budget: f64) -> WatchdogConfig {
        self.virtual_budget_us = Some(budget);
        self
    }

    /// Register a callback receiving the report when the watchdog fires.
    pub fn with_on_fire(mut self, f: impl Fn(&str) + Send + Sync + 'static) -> WatchdogConfig {
        self.on_fire = Some(Arc::new(f));
        self
    }
}

/// Everything configurable about a world, for [`run_world_configured`].
/// The older `run_world*` entry points are thin wrappers over this.
pub struct WorldConfig {
    pub mode: ClockMode,
    /// Eager/rendezvous protocol override (`None` = derive from mode).
    pub protocol: Option<ProtocolConfig>,
    /// Flight recorder to attach.
    pub recorder: Option<Arc<Recorder>>,
    /// Deterministic fault plan (injected crashes, drops, delays).
    pub fault: Option<FaultPlan>,
    /// Hang watchdog.
    pub watchdog: Option<WatchdogConfig>,
    /// Collective algorithm selection override (`None` = the adaptive
    /// defaults, with `MPIWASM_COLL_*` environment forcing applied).
    pub tuning: Option<CollTuning>,
    /// Per-rank thread stack size (`None` = [`DEFAULT_STACK_BYTES`]).
    /// Large simulated worlds running native bodies should pass
    /// [`SMALL_STACK_BYTES`] so idle ranks don't each pin 32 MiB.
    pub stack_size: Option<usize>,
}

impl WorldConfig {
    pub fn new(mode: ClockMode) -> WorldConfig {
        WorldConfig {
            mode,
            protocol: None,
            recorder: None,
            fault: None,
            watchdog: None,
            tuning: None,
            stack_size: None,
        }
    }

    pub fn with_protocol(mut self, protocol: ProtocolConfig) -> WorldConfig {
        self.protocol = Some(protocol);
        self
    }

    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> WorldConfig {
        self.recorder = Some(recorder);
        self
    }

    pub fn with_fault(mut self, plan: FaultPlan) -> WorldConfig {
        self.fault = Some(plan);
        self
    }

    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> WorldConfig {
        self.watchdog = Some(watchdog);
        self
    }

    pub fn with_coll_tuning(mut self, tuning: CollTuning) -> WorldConfig {
        self.tuning = Some(tuning);
        self
    }

    pub fn with_stack_size(mut self, bytes: usize) -> WorldConfig {
        self.stack_size = Some(bytes);
        self
    }
}

/// Shared world state.
pub struct World {
    pub(crate) size: u32,
    /// Per-rank mailboxes, materialized on first touch (through
    /// [`World::mailbox`]) so a mostly-idle 4096-rank simulated world
    /// pays only a pointer slot per rank that never communicates.
    mailboxes: Box<[OnceLock<Mailbox>]>,
    pub(crate) mode: ClockMode,
    /// Collective algorithm selection table (see [`crate::coll_algo`]).
    pub(crate) tuning: CollTuning,
    /// Per-rank thread stack size for `run_world_on`.
    stack_size: usize,
    /// Eager/rendezvous switch point and eager-buffer budgets.
    pub(crate) protocol: ProtocolConfig,
    /// Protocol traffic counters.
    pub(crate) stats: ProtocolStats,
    /// Optional flight recorder (`None` = tracing off: every emission
    /// site reduces to one pointer test).
    pub(crate) trace: Option<WorldTrace>,
    /// Per-rank liveness + diagnostics.
    pub(crate) health: Vec<RankHealth>,
    /// Failed world ranks in failure order. Its length is the failure
    /// epoch: `failed_list[e..]` are the failures an acknowledger at
    /// epoch `e` has not yet seen.
    failed_list: Mutex<Vec<u32>>,
    /// Lock-free mirror of `failed_list.len()`: hot paths (collective
    /// polls) gate their member scan on one load instead of the lock.
    failure_count: AtomicU64,
    /// Global liveness heartbeat: bumped on every post/match/delivery so
    /// the watchdog can tell "slow" from "stuck".
    progress: AtomicU64,
    /// Set by `shutdown` (teardown, panic, watchdog): late blocking calls
    /// and agreement waits return `WorldShutdown` instead of parking.
    stopped: AtomicBool,
    /// Injected-failure plan, if any.
    fault: Option<FaultState>,
    /// In-flight `Comm::agree` rounds, keyed by (comm id, agreement seq).
    agreements: Mutex<HashMap<(u64, u64), AgreeSlot>>,
    agree_cv: Condvar,
    /// Each rank's clock, registered at rank startup — lets world-scoped
    /// machinery (failure events, the watchdog report) timestamp and
    /// inspect per-rank virtual time.
    clocks: Mutex<Vec<Option<Arc<Mutex<Clock>>>>>,
    /// The watchdog's report, if it fired.
    watchdog_report: Mutex<Option<String>>,
    /// Watchdog tuning (consumed by `run_world_on` to start the monitor).
    watchdog: Option<WatchdogConfig>,
}

impl World {
    pub(crate) fn new(size: u32, mode: ClockMode) -> Arc<World> {
        Self::new_configured(size, WorldConfig::new(mode))
    }

    pub(crate) fn new_with_protocol(
        size: u32,
        mode: ClockMode,
        protocol: ProtocolConfig,
    ) -> Arc<World> {
        Self::new_configured(size, WorldConfig::new(mode).with_protocol(protocol))
    }

    pub(crate) fn new_configured(size: u32, config: WorldConfig) -> Arc<World> {
        assert!(size >= 1, "world must have at least one rank");
        let protocol =
            config.protocol.unwrap_or_else(|| ProtocolConfig::from_mode(&config.mode));
        let mailboxes = (0..size).map(|_| OnceLock::new()).collect();
        let trace = config.recorder.map(|rec| WorldTrace {
            virt: matches!(config.mode, ClockMode::Virtual(_)),
            rec,
        });
        Arc::new(World {
            size,
            mailboxes,
            mode: config.mode,
            tuning: config.tuning.unwrap_or_else(CollTuning::from_env),
            stack_size: config.stack_size.unwrap_or(DEFAULT_STACK_BYTES),
            protocol,
            stats: ProtocolStats::default(),
            trace,
            health: (0..size).map(|_| RankHealth::new()).collect(),
            failed_list: Mutex::new(Vec::new()),
            failure_count: AtomicU64::new(0),
            progress: AtomicU64::new(0),
            stopped: AtomicBool::new(false),
            fault: config.fault.map(|plan| FaultState {
                plan,
                pair_seq: Mutex::new(HashMap::new()),
            }),
            agreements: Mutex::new(HashMap::new()),
            agree_cv: Condvar::new(),
            clocks: Mutex::new((0..size).map(|_| None).collect()),
            watchdog_report: Mutex::new(None),
            watchdog: config.watchdog,
        })
    }

    pub fn size(&self) -> u32 {
        self.size
    }

    /// World rank `w`'s mailbox, materializing it on first touch. A
    /// mailbox born after a world-level sweep (shutdown, rank failure)
    /// must still observe it: the failed/stopped flags are set *before*
    /// the sweeps walk the mailboxes, so whichever of {sweep, init}
    /// misses the other, the flag check below closes the race.
    pub(crate) fn mailbox(&self, w: u32) -> &Mailbox {
        let slot = &self.mailboxes[w as usize];
        if let Some(mb) = slot.get() {
            return mb;
        }
        let mb = slot.get_or_init(|| Mailbox::new(self.protocol.eager_capacity));
        if self.stopped.load(Ordering::Acquire) {
            mb.shutdown();
        }
        if self.is_failed(w) {
            mb.fail_own(&MpiError::RankFailed { rank: w });
        }
        mb
    }

    /// Emit a trace event attributed to world-rank `rank`, timestamped by
    /// `clock` (virtual mode) or the recorder's epoch (real mode). The
    /// event constructor only runs when tracing is on.
    #[inline]
    pub(crate) fn emit(
        &self,
        rank: u32,
        clock: &Mutex<Clock>,
        kind: impl FnOnce() -> EventKind,
    ) {
        if let Some(t) = &self.trace {
            let ts = if t.virt { clock.lock().virtual_us } else { t.rec.elapsed_us() };
            t.rec.emit(rank as usize, ts, kind());
        }
    }

    /// Allocate a send→recv flow id (0 when tracing is off — the exporter
    /// treats 0 as "no flow").
    #[inline]
    pub(crate) fn next_flow(&self) -> u64 {
        match &self.trace {
            Some(t) => t.rec.next_flow(),
            None => 0,
        }
    }

    /// A fresh trace id for request state transitions (shares the flow
    /// counter: the ids only need uniqueness within a trace).
    #[inline]
    pub(crate) fn next_trace_id(&self) -> u64 {
        self.next_flow()
    }

    /// Has any rank failed yet? One atomic load — the fast-path gate for
    /// per-poll membership scans.
    #[inline]
    pub(crate) fn any_failed(&self) -> bool {
        self.failure_count.load(Ordering::Acquire) != 0
    }

    /// Has world rank `w` failed?
    #[inline]
    pub(crate) fn is_failed(&self, w: u32) -> bool {
        self.health
            .get(w as usize)
            .map(|h| h.failed.load(Ordering::Acquire))
            .unwrap_or(false)
    }

    /// The first failure at or after acknowledgement epoch `epoch`
    /// (`epoch` = how many failures the caller has already acknowledged).
    pub(crate) fn failed_since(&self, epoch: u64) -> Option<u32> {
        self.failed_list.lock().get(epoch as usize).copied()
    }

    /// Current failure epoch (total failures so far).
    pub(crate) fn failure_epoch(&self) -> u64 {
        self.failed_list.lock().len() as u64
    }

    /// Failed world ranks in failure order.
    pub(crate) fn failed_ranks(&self) -> Vec<u32> {
        self.failed_list.lock().clone()
    }

    /// Bump the global liveness heartbeat (any post/match/delivery).
    #[inline]
    pub(crate) fn note_progress(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Register rank `rank`'s clock for world-scoped diagnostics.
    pub(crate) fn register_clock(&self, rank: u32, clock: Arc<Mutex<Clock>>) {
        if let Some(slot) = self.clocks.lock().get_mut(rank as usize) {
            *slot = Some(clock);
        }
    }

    /// Fault-plan hook for every MPI call `world_rank` makes: records the
    /// op label + call count for the watchdog report, and kills the rank
    /// if the plan says so (or if it is already dead — a failed rank's
    /// calls all fail, it never resurrects).
    pub(crate) fn fault_step(
        &self,
        world_rank: u32,
        op: &'static str,
        now_us: f64,
    ) -> Result<(), MpiError> {
        let h = &self.health[world_rank as usize];
        *h.op.lock() = op;
        let calls = h.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if h.failed.load(Ordering::Acquire) {
            return Err(MpiError::RankFailed { rank: world_rank });
        }
        if let Some(f) = &self.fault {
            if f.plan.crash_due(world_rank, now_us, calls) {
                self.fail_rank(world_rank);
                return Err(MpiError::RankFailed { rank: world_rank });
            }
        }
        Ok(())
    }

    /// Wire fault (drop/extra delay) for the next `src`→`dst` message.
    #[inline]
    pub(crate) fn fault_wire(&self, src: u32, dst: u32) -> WireFault {
        match &self.fault {
            None => WireFault::none(),
            Some(f) => {
                let seq = {
                    let mut m = f.pair_seq.lock();
                    let c = m.entry((src, dst)).or_insert(0);
                    *c += 1;
                    *c
                };
                f.plan.wire_fault(src, dst, seq)
            }
        }
    }

    /// Declare world rank `rank` dead. Idempotent. Marks the rank failed
    /// *before* sweeping, so operations racing with the sweep are caught
    /// by the post-registration checks in `post_recv`/`start_send`; then
    /// fails everything already depending on the rank: its own posted
    /// state (dead-rank side), every peer's receives from it and
    /// rendezvous handshakes with it, and any agreement round awaiting
    /// its arrival.
    pub(crate) fn fail_rank(&self, rank: u32) {
        {
            let mut list = self.failed_list.lock();
            if self.health[rank as usize].failed.swap(true, Ordering::AcqRel) {
                return; // already dead
            }
            list.push(rank);
            self.failure_count.store(list.len() as u64, Ordering::Release);
        }
        let err = MpiError::RankFailed { rank };
        // Unmaterialized mailboxes are skipped: they hold nothing to
        // fail, and one born later re-checks the failed flag in
        // `World::mailbox`.
        if let Some(mb) = self.mailboxes[rank as usize].get() {
            mb.fail_own(&err);
        }
        for (w, slot) in self.mailboxes.iter().enumerate() {
            if w as u32 != rank {
                if let Some(mb) = slot.get() {
                    mb.on_peer_failed(rank, &err);
                }
            }
        }
        // Agreement rounds no longer wait for the dead rank.
        {
            let mut map = self.agreements.lock();
            let mut woke = false;
            for slot in map.values_mut() {
                woke |= self.freeze_if_complete(slot);
            }
            if woke {
                self.agree_cv.notify_all();
            }
        }
        self.note_progress();
        if let Some(t) = &self.trace {
            let ts = if t.virt {
                self.clocks.lock()[rank as usize]
                    .as_ref()
                    .map(|c| c.lock().virtual_us)
                    .unwrap_or(0.0)
            } else {
                t.rec.elapsed_us()
            };
            t.rec.emit(rank as usize, ts, EventKind::RankFailed { rank });
        }
    }

    /// Freeze `slot` if every group member has arrived or failed.
    /// Returns true when the slot transitioned to done.
    fn freeze_if_complete(&self, slot: &mut AgreeSlot) -> bool {
        if slot.done {
            return false;
        }
        let complete = slot
            .group
            .iter()
            .enumerate()
            .all(|(i, &w)| slot.arrived[i] || self.is_failed(w));
        if complete {
            slot.done = true;
            slot.failed = slot.group.iter().copied().filter(|&w| self.is_failed(w)).collect();
        }
        complete
    }

    /// ULFM-style agreement: AND `contrib` across the live members of
    /// `group` (a communicator's world-rank table). Blocks until every
    /// member has contributed or failed, then every participant returns
    /// the same `(value, failed)` pair — `failed` being the group members
    /// (world ranks) dead at freeze time. `seq` distinguishes successive
    /// agreements on the same communicator.
    pub(crate) fn agree(
        &self,
        comm_id: u64,
        seq: u64,
        group: &Arc<Vec<u32>>,
        my_idx: usize,
        contrib: u32,
    ) -> Result<(u32, Vec<u32>), MpiError> {
        let key = (comm_id, seq);
        let mut map = self.agreements.lock();
        {
            let slot = map.entry(key).or_insert_with(|| AgreeSlot {
                group: Arc::clone(group),
                value: u32::MAX,
                arrived: vec![false; group.len()],
                done: false,
                failed: Vec::new(),
            });
            slot.value &= contrib;
            slot.arrived[my_idx] = true;
        }
        self.note_progress();
        loop {
            let slot = map.get_mut(&key).expect("agreement slot vanished");
            if self.freeze_if_complete(slot) {
                self.agree_cv.notify_all();
            }
            if slot.done {
                return Ok((slot.value, slot.failed.clone()));
            }
            if self.stopped.load(Ordering::Acquire) {
                return Err(MpiError::WorldShutdown);
            }
            self.agree_cv.wait(&mut map);
        }
    }

    /// The watchdog's report, if it fired.
    pub fn watchdog_report(&self) -> Option<String> {
        self.watchdog_report.lock().clone()
    }

    /// All ranks finished (normally or by failure) — nothing to watch.
    fn all_done_or_failed(&self) -> bool {
        self.health
            .iter()
            .all(|h| h.done.load(Ordering::Acquire) || h.failed.load(Ordering::Acquire))
    }

    /// Per-rank state dump for the watchdog report.
    fn rank_report(&self) -> String {
        let clocks = self.clocks.lock();
        let mut out = String::new();
        for (r, h) in self.health.iter().enumerate() {
            let state = if h.failed.load(Ordering::Acquire) {
                "FAILED"
            } else if h.done.load(Ordering::Acquire) {
                "done"
            } else {
                "blocked"
            };
            let t_us = clocks
                .get(r)
                .and_then(|c| c.as_ref())
                .map(|c| c.lock().virtual_us)
                .unwrap_or(0.0);
            out.push_str(&format!(
                "rank {r}: {state} in {} (mpi_calls={}, vclock={t_us:.1}us)\n",
                *h.op.lock(),
                h.calls.load(Ordering::Relaxed),
            ));
        }
        out
    }

    /// Declare the world hung: store the report, surface it through the
    /// recorder (event + `otherData` annotation) and the `on_fire`
    /// callback, then shut the world down so blocked ranks error out.
    fn watchdog_fire(&self, why: &str, stalled: Duration) {
        let report = format!(
            "hang watchdog fired: {why} (no progress for {:.0}ms)\n{}",
            stalled.as_secs_f64() * 1e3,
            self.rank_report()
        );
        *self.watchdog_report.lock() = Some(report.clone());
        if let Some(t) = &self.trace {
            t.rec.emit_engine(EventKind::WatchdogFired {
                stalled_us: stalled.as_secs_f64() * 1e6,
            });
            t.rec.set_annotation("watchdog_report", report.as_str());
        }
        if let Some(cfg) = &self.watchdog {
            if let Some(f) = &cfg.on_fire {
                f(&report);
            }
        }
        self.shutdown();
    }

    /// Monitor loop (runs on its own thread until the world completes or
    /// the watchdog fires).
    fn watchdog_loop(&self, cfg: &WatchdogConfig, stop: &AtomicBool) {
        let mut last = self.progress.load(Ordering::Relaxed);
        let mut stalled = Duration::ZERO;
        loop {
            std::thread::sleep(cfg.poll_interval);
            if stop.load(Ordering::Acquire) || self.all_done_or_failed() {
                return;
            }
            if let Some(budget) = cfg.virtual_budget_us {
                let over = self.clocks.lock().iter().enumerate().find_map(|(r, c)| {
                    let t = c.as_ref().map(|c| c.lock().virtual_us).unwrap_or(0.0);
                    (t > budget).then_some((r, t))
                });
                if let Some((r, t)) = over {
                    self.watchdog_fire(
                        &format!(
                            "simulated-time budget exceeded (rank {r} at {t:.1}us > {budget:.1}us)"
                        ),
                        stalled,
                    );
                    return;
                }
            }
            let now = self.progress.load(Ordering::Relaxed);
            if now != last {
                last = now;
                stalled = Duration::ZERO;
                continue;
            }
            stalled += cfg.poll_interval;
            if stalled >= cfg.wall_timeout {
                self.watchdog_fire("no progress", stalled);
                return;
            }
        }
    }

    /// Unblock every rank (teardown after a panic or watchdog firing, so
    /// the others do not hang forever on a receive that will never be
    /// satisfied). Also fails queued rendezvous handshakes so blocked
    /// senders wake up, and releases agreement waiters.
    pub(crate) fn shutdown(&self) {
        self.stopped.store(true, Ordering::Release);
        for slot in &self.mailboxes {
            if let Some(mb) = slot.get() {
                mb.shutdown();
            }
        }
        let _map = self.agreements.lock();
        self.agree_cv.notify_all();
    }
}

/// Run `size` MPI ranks with real clocks. Each rank executes `body` on its
/// own thread with a world [`Comm`]; results are returned in rank order.
///
/// This is the analog of `mpirun -np <size>`.
pub fn run_world<R, F>(size: u32, body: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    run_world_with(size, ClockMode::Real, body)
}

/// [`run_world`] with an explicit clock mode. Passing
/// [`ClockMode::Virtual`] makes every rank track LogP-style simulated time
/// (see crate docs); `Comm::wtime` then reads the virtual clock. The
/// message protocol (eager threshold, buffer budgets) is derived from the
/// mode; use [`run_world_with_protocol`] to override it.
pub fn run_world_with<R, F>(size: u32, mode: ClockMode, body: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    run_world_on(World::new(size, mode), body)
}

/// [`run_world_with`] with an explicit [`ProtocolConfig`] — used by the
/// protocol A/B benchmarks (e.g. forcing the seed's eager-only behavior).
pub fn run_world_with_protocol<R, F>(
    size: u32,
    mode: ClockMode,
    protocol: ProtocolConfig,
    body: F,
) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    run_world_on(World::new_with_protocol(size, mode, protocol), body)
}

/// [`run_world_with`] with a flight recorder attached: every rank's p2p,
/// collective, and request activity is logged into `recorder` (one ring
/// per rank), and at teardown the world's protocol counters are folded
/// into the recorder's metrics registry. Pass the protocol to override
/// the mode-derived default.
pub fn run_world_recorded<R, F>(
    size: u32,
    mode: ClockMode,
    protocol: Option<ProtocolConfig>,
    recorder: Arc<Recorder>,
    body: F,
) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    let mut config = WorldConfig::new(mode).with_recorder(recorder);
    config.protocol = protocol;
    run_world_configured(size, config, body)
}

/// The fully-configurable entry point: protocol, recorder, fault plan,
/// and hang watchdog all in one [`WorldConfig`].
pub fn run_world_configured<R, F>(size: u32, config: WorldConfig, body: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    run_world_on(World::new_configured(size, config), body)
}

fn run_world_on<R, F>(world: Arc<World>, body: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    let size = world.size;
    let body = Arc::new(body);

    // Start the hang watchdog before any rank runs, stop it after joins.
    let watchdog_stop = Arc::new(AtomicBool::new(false));
    let watchdog_handle = world.watchdog.clone().map(|cfg| {
        let world = Arc::clone(&world);
        let stop = Arc::clone(&watchdog_stop);
        std::thread::Builder::new()
            .name("mpi-watchdog".into())
            .spawn(move || world.watchdog_loop(&cfg, &stop))
            .expect("failed to spawn watchdog thread")
    });

    let handles: Vec<_> = (0..size)
        .map(|rank| {
            let world = Arc::clone(&world);
            let body = Arc::clone(&body);
            std::thread::Builder::new()
                .name(format!("mpi-rank-{rank}"))
                .stack_size(world.stack_size)
                .spawn(move || {
                    let comm = Comm::world(Arc::clone(&world), rank);
                    let result = catch_unwind(AssertUnwindSafe(|| body(comm)));
                    match &result {
                        Ok(_) => world.health[rank as usize].done.store(true, Ordering::Release),
                        Err(_) => {
                            // A panicking rank is a failed rank: peers
                            // observe `RankFailed` for work that depended
                            // on it. The shutdown keeps the historical
                            // big-hammer guarantee that *nothing* keeps
                            // blocking once a rank has panicked.
                            world.fail_rank(rank);
                            world.shutdown();
                        }
                    }
                    result
                })
                .expect("failed to spawn rank thread")
        })
        .collect();

    let mut results = Vec::with_capacity(size as usize);
    let mut panic: Option<(u32, Box<dyn std::any::Any + Send>)> = None;
    for (rank, h) in handles.into_iter().enumerate() {
        match h.join().expect("rank thread panicked outside catch_unwind") {
            Ok(r) => results.push(r),
            Err(p) => {
                if panic.is_none() {
                    panic = Some((rank as u32, p));
                }
            }
        }
    }
    watchdog_stop.store(true, Ordering::Release);
    if let Some(p) = &panic {
        // Don't wait out the watchdog poll on the panic path.
        drop(watchdog_handle);
        let _ = p;
    } else if let Some(h) = watchdog_handle {
        let _ = h.join();
    }
    if let Some((rank, p)) = panic {
        // Re-raise with the rank identity attached. String payloads keep
        // their original text embedded so `should_panic(expected = ...)`
        // substring pins continue to match; non-string payloads are
        // re-raised untouched (we cannot rewrap them losslessly).
        let msg = if let Some(s) = p.downcast_ref::<&'static str>() {
            Some((*s).to_string())
        } else {
            p.downcast_ref::<String>().cloned()
        };
        match msg {
            Some(m) => panic!("rank {rank} panicked: {m}"),
            None => resume_unwind(p),
        }
    }
    if let Some(t) = &world.trace {
        // Quiescent now (all ranks joined): fold the protocol counters
        // into the unified metrics registry.
        t.rec.fold_metrics(world.stats.metric_entries());
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_identity() {
        let ranks = run_world(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(ranks, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn single_rank_world_works() {
        let out = run_world(1, |comm| comm.rank());
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates_without_hanging_others() {
        run_world(3, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            // Other ranks block forever on a message that never comes;
            // the shutdown must unblock them.
            let mut buf = [0u8; 4];
            let _ = comm.recv(&mut buf, crate::Source::Any, crate::Tag::Any);
        });
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked: kaput")]
    fn panic_message_names_the_guilty_rank() {
        run_world(4, |comm| {
            if comm.rank() == 2 {
                panic!("kaput");
            }
            let mut buf = [0u8; 4];
            let _ = comm.recv(&mut buf, crate::Source::Any, crate::Tag::Any);
        });
    }

    #[test]
    fn watchdog_fires_on_a_stuck_world_instead_of_hanging() {
        let fired = Arc::new(Mutex::new(None::<String>));
        let fired2 = Arc::clone(&fired);
        let config = WorldConfig::new(ClockMode::Real).with_watchdog(
            WatchdogConfig::wall(Duration::from_millis(100))
                .with_on_fire(move |report| *fired2.lock() = Some(report.to_string())),
        );
        // Rank 1 never sends: rank 0 is permanently stuck.
        let results = run_world_configured(2, config, |comm| {
            if comm.rank() == 0 {
                let mut buf = [0u8; 4];
                comm.recv(&mut buf, crate::Source::Rank(1), crate::Tag::Any).map(|_| ())
            } else {
                Ok(())
            }
        });
        assert_eq!(results[1], Ok(()));
        assert!(results[0].is_err(), "stuck rank must be unwedged with an error");
        let report = fired.lock().clone().expect("watchdog must fire");
        assert!(report.contains("hang watchdog fired"), "{report}");
        assert!(report.contains("rank 0"), "{report}");
        assert!(report.contains("recv"), "report should name the blocked op: {report}");
    }

    #[test]
    fn watchdog_stays_quiet_on_a_healthy_world() {
        let fired = Arc::new(AtomicBool::new(false));
        let fired2 = Arc::clone(&fired);
        let config = WorldConfig::new(ClockMode::Real).with_watchdog(
            WatchdogConfig::wall(Duration::from_millis(200))
                .with_on_fire(move |_| fired2.store(true, Ordering::Release)),
        );
        let results = run_world_configured(2, config, |comm| {
            let mut buf = [0u8; 4];
            if comm.rank() == 0 {
                comm.send(&[1, 2, 3, 4], 1, 7).unwrap();
                Ok(())
            } else {
                comm.recv(&mut buf, crate::Source::Rank(0), crate::Tag::Value(7)).map(|_| ())
            }
        });
        assert!(results.iter().all(|r| r.is_ok()));
        assert!(!fired.load(Ordering::Acquire));
    }

    #[test]
    fn injected_crash_fails_survivors_with_rank_failed() {
        use netsim::FaultPlan;
        // Rank 1 dies on its very first MPI call; rank 0's blocking recv
        // from it must observe RankFailed rather than hang.
        let config = WorldConfig::new(ClockMode::Real)
            .with_fault(FaultPlan::new(1).crash_at_call(1, 1));
        let results = run_world_configured(2, config, |comm| {
            if comm.rank() == 0 {
                let mut buf = [0u8; 4];
                comm.recv(&mut buf, crate::Source::Rank(1), crate::Tag::Any).map(|_| ())
            } else {
                comm.send(&[9u8; 4], 0, 0).map(|_| ())
            }
        });
        assert_eq!(results[0], Err(MpiError::RankFailed { rank: 1 }));
        assert_eq!(results[1], Err(MpiError::RankFailed { rank: 1 }));
    }
}

//! Collective algorithm selection — the substrate's analog of Open MPI's
//! "tuned" module.
//!
//! Every multi-algorithm collective in [`crate::collectives`] dispatches
//! through a [`CollTuning`] table attached to the world. A cell is chosen
//! per **(collective, communicator size, payload bytes)** by the
//! `select_*` methods below; any cell can be *forced* — pinned to one
//! algorithm regardless of size — either programmatically
//! ([`crate::WorldConfig::with_coll_tuning`]) or through the environment
//! (`MPIWASM_COLL_BCAST`, `MPIWASM_COLL_ALLGATHER`,
//! `MPIWASM_COLL_ALLREDUCE`, `MPIWASM_COLL_ALLTOALL`, each naming an
//! algorithm; `MPIWASM_COLL_SEGMENT` overrides the pipeline segment
//! size in bytes). Forcing is what the conformance matrix uses to pin
//! every schedule against the naive oracle (`tests/coll_algos.rs`).
//!
//! The default thresholds follow the shapes production libraries tune
//! toward: latency-bound schedules (trees, recursive doubling, Bruck)
//! for small payloads where the α·rounds term dominates, and
//! bandwidth-bound schedules (ring, Rabenseifner) once β·bytes does.
//! See `docs/collectives.md` for the full table.

/// `MPI_Bcast` schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcastAlgo {
    /// Binomial tree, ⌈log₂ p⌉ rounds of the whole payload.
    Binomial,
    /// Binomial tree over pipelined segments: a child forwards segment
    /// `s` while receiving segment `s+1`.
    BinomialSegmented,
    /// Pipelined ring: bandwidth-optimal asymptotically, p−1+segments
    /// rounds deep.
    Ring,
}

impl BcastAlgo {
    pub const ALL: [BcastAlgo; 3] =
        [BcastAlgo::Binomial, BcastAlgo::BinomialSegmented, BcastAlgo::Ring];

    pub fn name(self) -> &'static str {
        self.obs().name()
    }

    pub fn parse(s: &str) -> Option<BcastAlgo> {
        Self::ALL.into_iter().find(|a| a.name() == s)
    }

    pub(crate) fn obs(self) -> obs::Algorithm {
        match self {
            BcastAlgo::Binomial => obs::Algorithm::Binomial,
            BcastAlgo::BinomialSegmented => obs::Algorithm::BinomialSegmented,
            BcastAlgo::Ring => obs::Algorithm::Ring,
        }
    }
}

/// `MPI_Allgather` schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllgatherAlgo {
    /// Neighbour ring, p−1 rounds of one block.
    Ring,
    /// Bruck: ⌈log₂ p⌉ rounds, doubling the carried block set; any p.
    Bruck,
    /// Recursive doubling with pairwise fold-in/unfold for
    /// non-power-of-two p.
    RecursiveDoubling,
}

impl AllgatherAlgo {
    pub const ALL: [AllgatherAlgo; 3] =
        [AllgatherAlgo::Ring, AllgatherAlgo::Bruck, AllgatherAlgo::RecursiveDoubling];

    pub fn name(self) -> &'static str {
        self.obs().name()
    }

    pub fn parse(s: &str) -> Option<AllgatherAlgo> {
        Self::ALL.into_iter().find(|a| a.name() == s)
    }

    pub(crate) fn obs(self) -> obs::Algorithm {
        match self {
            AllgatherAlgo::Ring => obs::Algorithm::Ring,
            AllgatherAlgo::Bruck => obs::Algorithm::Bruck,
            AllgatherAlgo::RecursiveDoubling => obs::Algorithm::RecursiveDoubling,
        }
    }
}

/// `MPI_Allreduce` schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllreduceAlgo {
    /// Recursive doubling with non-power-of-two fold-in.
    RecursiveDoubling,
    /// Rabenseifner: recursive-halving reduce-scatter + recursive-
    /// doubling allgather; bandwidth-optimal for large payloads.
    Rabenseifner,
}

impl AllreduceAlgo {
    pub const ALL: [AllreduceAlgo; 2] =
        [AllreduceAlgo::RecursiveDoubling, AllreduceAlgo::Rabenseifner];

    pub fn name(self) -> &'static str {
        self.obs().name()
    }

    pub fn parse(s: &str) -> Option<AllreduceAlgo> {
        Self::ALL.into_iter().find(|a| a.name() == s)
    }

    pub(crate) fn obs(self) -> obs::Algorithm {
        match self {
            AllreduceAlgo::RecursiveDoubling => obs::Algorithm::RecursiveDoubling,
            AllreduceAlgo::Rabenseifner => obs::Algorithm::Rabenseifner,
        }
    }
}

/// `MPI_Alltoall` schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlltoallAlgo {
    /// Direct pairwise exchange: p−1 isends + p−1 specific receives.
    Pairwise,
    /// Bruck: rotation + ⌈log₂ p⌉ store-and-forward rounds; wins for
    /// small blocks at large p where the α·(p−1) term dominates.
    Bruck,
}

impl AlltoallAlgo {
    pub const ALL: [AlltoallAlgo; 2] = [AlltoallAlgo::Pairwise, AlltoallAlgo::Bruck];

    pub fn name(self) -> &'static str {
        self.obs().name()
    }

    pub fn parse(s: &str) -> Option<AlltoallAlgo> {
        Self::ALL.into_iter().find(|a| a.name() == s)
    }

    pub(crate) fn obs(self) -> obs::Algorithm {
        match self {
            AlltoallAlgo::Pairwise => obs::Algorithm::Pairwise,
            AlltoallAlgo::Bruck => obs::Algorithm::Bruck,
        }
    }
}

/// Default pipeline segment for the segmented bcast schedules.
pub const DEFAULT_SEGMENT_BYTES: usize = 32 * 1024;

/// The per-world algorithm selection table. `None` cells use the size-
/// adaptive defaults in the `select_*` methods; `Some` cells are forced.
#[derive(Clone, Debug)]
pub struct CollTuning {
    pub bcast: Option<BcastAlgo>,
    pub allgather: Option<AllgatherAlgo>,
    pub allreduce: Option<AllreduceAlgo>,
    pub alltoall: Option<AlltoallAlgo>,
    /// Segment size (bytes) for the pipelined bcast schedules.
    pub segment_bytes: usize,
}

impl Default for CollTuning {
    fn default() -> CollTuning {
        CollTuning {
            bcast: None,
            allgather: None,
            allreduce: None,
            alltoall: None,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }
}

impl CollTuning {
    pub fn new() -> CollTuning {
        CollTuning::default()
    }

    /// Read forced cells from `MPIWASM_COLL_*` environment variables
    /// (unset cells stay adaptive; unknown algorithm names are reported
    /// on stderr and ignored).
    pub fn from_env() -> CollTuning {
        fn get<T>(var: &str, parse: impl Fn(&str) -> Option<T>) -> Option<T> {
            let val = std::env::var(var).ok()?;
            match parse(&val) {
                Some(a) => Some(a),
                None => {
                    eprintln!("warning: {var}={val} names no known algorithm; ignored");
                    None
                }
            }
        }
        CollTuning {
            bcast: get("MPIWASM_COLL_BCAST", BcastAlgo::parse),
            allgather: get("MPIWASM_COLL_ALLGATHER", AllgatherAlgo::parse),
            allreduce: get("MPIWASM_COLL_ALLREDUCE", AllreduceAlgo::parse),
            alltoall: get("MPIWASM_COLL_ALLTOALL", AlltoallAlgo::parse),
            segment_bytes: get("MPIWASM_COLL_SEGMENT", |s| s.parse().ok())
                .filter(|&s: &usize| s > 0)
                .unwrap_or(DEFAULT_SEGMENT_BYTES),
        }
    }

    pub fn force_bcast(mut self, a: BcastAlgo) -> CollTuning {
        self.bcast = Some(a);
        self
    }

    pub fn force_allgather(mut self, a: AllgatherAlgo) -> CollTuning {
        self.allgather = Some(a);
        self
    }

    pub fn force_allreduce(mut self, a: AllreduceAlgo) -> CollTuning {
        self.allreduce = Some(a);
        self
    }

    pub fn force_alltoall(mut self, a: AlltoallAlgo) -> CollTuning {
        self.alltoall = Some(a);
        self
    }

    pub fn with_segment_bytes(mut self, bytes: usize) -> CollTuning {
        assert!(bytes > 0, "segment must be at least one byte");
        self.segment_bytes = bytes;
        self
    }

    /// Bcast cell for `p` ranks of a `bytes` payload: binomial while the
    /// payload fits one segment (latency-bound), pipelined binomial in
    /// the midrange, ring once bandwidth dominates outright.
    pub fn select_bcast(&self, p: u32, bytes: usize) -> BcastAlgo {
        if let Some(a) = self.bcast {
            return a;
        }
        if bytes <= self.segment_bytes || p <= 4 {
            BcastAlgo::Binomial
        } else if bytes >= 16 * self.segment_bytes {
            BcastAlgo::Ring
        } else {
            BcastAlgo::BinomialSegmented
        }
    }

    /// Allgather cell for `p` ranks of a `block_bytes` contribution:
    /// log-round schedules while the gathered total is small (recursive
    /// doubling on power-of-two counts, Bruck otherwise), ring once the
    /// total is bandwidth-bound.
    pub fn select_allgather(&self, p: u32, block_bytes: usize) -> AllgatherAlgo {
        if let Some(a) = self.allgather {
            return a;
        }
        let total = block_bytes.saturating_mul(p as usize);
        if total >= 256 * 1024 {
            AllgatherAlgo::Ring
        } else if p.is_power_of_two() {
            AllgatherAlgo::RecursiveDoubling
        } else {
            AllgatherAlgo::Bruck
        }
    }

    /// Allreduce cell: recursive doubling for latency-bound payloads,
    /// Rabenseifner once the payload is large enough that moving
    /// (p−1)/p of it twice beats moving all of it log₂ p times.
    pub fn select_allreduce(&self, p: u32, bytes: usize) -> AllreduceAlgo {
        if let Some(a) = self.allreduce {
            return a;
        }
        if bytes >= 32 * 1024 && p >= 4 {
            AllreduceAlgo::Rabenseifner
        } else {
            AllreduceAlgo::RecursiveDoubling
        }
    }

    /// Alltoall cell for per-destination blocks of `block_bytes`: Bruck
    /// for small blocks at large p (α·log₂ p beats α·(p−1)), pairwise
    /// otherwise (Bruck moves every byte log₂ p times).
    pub fn select_alltoall(&self, p: u32, block_bytes: usize) -> AlltoallAlgo {
        if let Some(a) = self.alltoall {
            return a;
        }
        if block_bytes <= 1024 && p >= 8 {
            AlltoallAlgo::Bruck
        } else {
            AlltoallAlgo::Pairwise
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for a in BcastAlgo::ALL {
            assert_eq!(BcastAlgo::parse(a.name()), Some(a));
        }
        for a in AllgatherAlgo::ALL {
            assert_eq!(AllgatherAlgo::parse(a.name()), Some(a));
        }
        for a in AllreduceAlgo::ALL {
            assert_eq!(AllreduceAlgo::parse(a.name()), Some(a));
        }
        for a in AlltoallAlgo::ALL {
            assert_eq!(AlltoallAlgo::parse(a.name()), Some(a));
        }
        assert_eq!(BcastAlgo::parse("no-such-schedule"), None);
    }

    #[test]
    fn defaults_are_size_adaptive() {
        let t = CollTuning::new();
        assert_eq!(t.select_bcast(64, 1024), BcastAlgo::Binomial);
        assert_eq!(t.select_bcast(64, 128 * 1024), BcastAlgo::BinomialSegmented);
        assert_eq!(t.select_bcast(64, 4 << 20), BcastAlgo::Ring);
        assert_eq!(t.select_allgather(64, 64), AllgatherAlgo::RecursiveDoubling);
        assert_eq!(t.select_allgather(33, 64), AllgatherAlgo::Bruck);
        assert_eq!(t.select_allgather(64, 1 << 20), AllgatherAlgo::Ring);
        assert_eq!(t.select_allreduce(64, 64), AllreduceAlgo::RecursiveDoubling);
        assert_eq!(t.select_allreduce(64, 1 << 20), AllreduceAlgo::Rabenseifner);
        assert_eq!(t.select_alltoall(64, 64), AlltoallAlgo::Bruck);
        assert_eq!(t.select_alltoall(64, 1 << 20), AlltoallAlgo::Pairwise);
        assert_eq!(t.select_alltoall(4, 64), AlltoallAlgo::Pairwise);
    }

    #[test]
    fn forced_cells_override_every_size() {
        let t = CollTuning::new()
            .force_bcast(BcastAlgo::Ring)
            .force_allreduce(AllreduceAlgo::Rabenseifner);
        assert_eq!(t.select_bcast(2, 1), BcastAlgo::Ring);
        assert_eq!(t.select_allreduce(2, 1), AllreduceAlgo::Rabenseifner);
        // Unforced cells stay adaptive.
        assert_eq!(t.select_alltoall(64, 64), AlltoallAlgo::Bruck);
    }
}

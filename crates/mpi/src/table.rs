//! A lock-protected per-rank request table for `MPI_THREAD_MULTIPLE`
//! embedders.
//!
//! The table owns `Request<'static>` operations (raw-pointer requests
//! whose buffers the embedder pins) behind integer handles:
//! **handle = slot index + 1, `0` = `MPI_REQUEST_NULL`** — the encoding
//! the Wasm guest ABI exposes. One `parking_lot`-style mutex guards the
//! slot vector; every table operation is atomic under it, so several
//! threads of one rank may insert, progress, test, and remove requests
//! concurrently.
//!
//! # Lock ordering and blocking
//!
//! Table operations may take a *mailbox* lock (through
//! `Request::progress`) while holding the table lock, never the reverse
//! — the mailbox layer knows nothing about tables — so the lock order
//! `table → mailbox → entry/slot` is acyclic. Blocking waits are the
//! caller's concern: [`RequestTable::request_mut`] returns a guard that
//! holds the table lock, so parking inside it (e.g. `Request::wait`)
//! serializes other threads against this table for the duration. That is
//! *correct* — receives park on their entry condvar and are woken by the
//! sender, which never touches the receiver's table — but a
//! multi-threaded embedder that wants concurrent progress should instead
//! poll via [`RequestTable::progress_all`] + short `with`-style accesses,
//! as the stress tests do.
//!
//! Slots are append-only while live: freed *interior* slots are never
//! reused, and the freed tail is reclaimed on removal, bounding the
//! table by the live-request high-water mark. Tail reclamation means a
//! handle *value* can recur after [`RequestTable::remove`] (remove the
//! tail, insert, and the new request gets the old number) — a handle is
//! dead the moment `remove`/`detach` returns, and holding onto one is a
//! caller bug, exactly as with a real `MPI_Request` after completion.

use parking_lot::{Mutex, MutexGuard};

use crate::error::MpiError;
use crate::request::Request;

/// See the module docs.
#[derive(Default)]
pub struct RequestTable {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    slots: Vec<Option<Request<'static>>>,
    /// Requests freed while still active (`MPI_Request_free` on an
    /// in-flight send): no handle points here anymore; they stay alive
    /// until the peer drains them, then drop in `progress_all`.
    detached: Vec<Request<'static>>,
}

/// Exclusive access to one live request, holding the table lock. Derefs
/// to [`Request`]; drop it before calling any other table method from the
/// same thread (the lock is not reentrant).
pub struct RequestRef<'a> {
    guard: MutexGuard<'a, Inner>,
    idx: usize,
}

impl std::ops::Deref for RequestRef<'_> {
    type Target = Request<'static>;
    fn deref(&self) -> &Request<'static> {
        self.guard.slots[self.idx].as_ref().expect("slot checked live at lookup")
    }
}

impl std::ops::DerefMut for RequestRef<'_> {
    fn deref_mut(&mut self) -> &mut Request<'static> {
        self.guard.slots[self.idx].as_mut().expect("slot checked live at lookup")
    }
}

impl RequestTable {
    pub fn new() -> RequestTable {
        RequestTable::default()
    }

    /// Register a pending request; returns its handle (≥ 1).
    pub fn insert(&self, req: Request<'static>) -> i32 {
        let mut inner = self.inner.lock();
        inner.slots.push(Some(req));
        inner.slots.len() as i32
    }

    fn index(handle: i32) -> Result<usize, MpiError> {
        if handle <= 0 {
            return Err(MpiError::InvalidComm(handle as u32));
        }
        Ok(handle as usize - 1)
    }

    /// Borrow a live request by handle (progress/test/start). The
    /// returned guard holds the table lock — see the module docs.
    pub fn request_mut(&self, handle: i32) -> Result<RequestRef<'_>, MpiError> {
        let idx = Self::index(handle)?;
        let guard = self.inner.lock();
        if guard.slots.get(idx).is_some_and(Option::is_some) {
            Ok(RequestRef { guard, idx })
        } else {
            Err(MpiError::InvalidComm(handle as u32))
        }
    }

    /// Run `f` on a live request under the table lock (the closure form
    /// of [`RequestTable::request_mut`], for multi-threaded callers that
    /// must not hold the guard across other calls).
    pub fn with<R>(
        &self,
        handle: i32,
        f: impl FnOnce(&mut Request<'static>) -> R,
    ) -> Result<R, MpiError> {
        let mut req = self.request_mut(handle)?;
        Ok(f(&mut req))
    }

    /// Remove a request from the table (completion of a one-shot request,
    /// or `MPI_Request_free`). Trailing freed slots are popped so the
    /// append-only table stays bounded.
    pub fn remove(&self, handle: i32) -> Result<Request<'static>, MpiError> {
        let idx = Self::index(handle)?;
        let mut inner = self.inner.lock();
        let req = inner
            .slots
            .get_mut(idx)
            .and_then(Option::take)
            .ok_or(MpiError::InvalidComm(handle as u32))?;
        while inner.slots.last().is_some_and(Option::is_none) {
            inner.slots.pop();
        }
        Ok(req)
    }

    /// Free a request immediately (`MPI_Request_free`). In-flight sends
    /// are parked in the detached list until the peer drains them — the
    /// payload must still arrive ("marked for deletion on completion");
    /// everything else (pending receives, finished requests) is dropped:
    /// a freed speculative receive may never match, and its message stays
    /// queued for other receives.
    pub fn detach(&self, handle: i32) -> Result<(), MpiError> {
        let idx = Self::index(handle)?;
        let mut inner = self.inner.lock();
        let req = inner
            .slots
            .get_mut(idx)
            .and_then(Option::take)
            .ok_or(MpiError::InvalidComm(handle as u32))?;
        if req.completes_passively() {
            inner.detached.push(req);
        }
        while inner.slots.last().is_some_and(Option::is_none) {
            inner.slots.pop();
        }
        Ok(())
    }

    /// Drive every live request one progress step (outcomes latch inside
    /// each request until its owner retrieves them) and drop detached
    /// requests that finished. Safe to call from any thread, concurrently
    /// with handle operations from others — the whole sweep runs under
    /// the table lock, so a request is never progressed by two threads at
    /// once.
    pub fn progress_all(&self) {
        let mut inner = self.inner.lock();
        for req in inner.slots.iter_mut().flatten() {
            req.progress();
        }
        inner.detached.retain_mut(|req| {
            req.progress();
            !req.is_complete()
        });
    }

    /// Number of live (unwaited) requests, for leak diagnostics.
    pub fn live(&self) -> usize {
        self.inner.lock().slots.iter().filter(|r| r.is_some()).count()
    }

    /// Number of table requests that need active driving (pending
    /// receives and collectives — see `Request::needs_progress`). Gates
    /// the completion calls' condvar-park fast path.
    pub fn progress_work(&self) -> usize {
        self.inner.lock().slots.iter().flatten().filter(|r| r.needs_progress()).count()
    }
}

// Safety: `Request<'static>` is `Send` (its raw buffer pointers target
// embedder-pinned memory) and every access to the slots goes through the
// table mutex, so sharing the table across a rank's threads never yields
// two concurrent `&mut` to one request.
unsafe impl Sync for RequestTable {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Source, Tag};
    use crate::world::run_world;

    #[test]
    fn handles_encode_index_plus_one_and_reclaim_tail() {
        run_world(1, |comm| {
            let table = RequestTable::new();
            let mut bufs = [[0u8; 4]; 3];
            let [b0, b1, b2] = &mut bufs;
            let h0 = table
                .insert(unsafe { comm.irecv_raw(b0.as_mut_ptr(), 4, Source::Any, Tag::Any) }.unwrap());
            let h1 = table
                .insert(unsafe { comm.irecv_raw(b1.as_mut_ptr(), 4, Source::Any, Tag::Any) }.unwrap());
            let h2 = table
                .insert(unsafe { comm.irecv_raw(b2.as_mut_ptr(), 4, Source::Any, Tag::Any) }.unwrap());
            assert_eq!((h0, h1, h2), (1, 2, 3));
            assert_eq!(table.live(), 3);
            assert!(table.request_mut(0).is_err(), "0 is MPI_REQUEST_NULL");
            assert!(table.request_mut(4).is_err());

            // Freed interior slots are not reused...
            table.remove(h1).unwrap().cancel();
            assert!(table.request_mut(h1).is_err());
            assert_eq!(table.live(), 2);
            // ...but the freed tail is reclaimed.
            table.remove(h2).unwrap().cancel();
            table.remove(h0).unwrap().cancel();
            assert_eq!(table.live(), 0);
            let again = table
                .insert(unsafe { comm.irecv_raw(bufs[0].as_mut_ptr(), 4, Source::Any, Tag::Any) }.unwrap());
            assert_eq!(again, 1, "tail reclaimed down to empty");
            table.remove(again).unwrap().cancel();
        });
    }

    #[test]
    fn progress_all_completes_requests_for_with_accessors() {
        run_world(2, |comm| {
            if comm.rank() == 0 {
                comm.send(b"ping", 1, 7).unwrap();
            } else {
                let table = RequestTable::new();
                let mut buf = [0u8; 4];
                let h = table.insert(
                    unsafe {
                        comm.irecv_raw(buf.as_mut_ptr(), 4, Source::Rank(0), Tag::Value(7))
                    }
                    .unwrap(),
                );
                let mut spins = 0u32;
                loop {
                    table.progress_all();
                    if table.with(h, |r| r.is_complete()).unwrap() {
                        break;
                    }
                    crate::request::backoff(&mut spins);
                }
                let st = table.with(h, |r| r.take_result()).unwrap().unwrap();
                assert_eq!((st.source, st.tag, st.bytes), (0, 7, 4));
                table.remove(h).unwrap();
                assert_eq!(table.live(), 0);
                assert_eq!(&buf, b"ping");
            }
        });
    }
}

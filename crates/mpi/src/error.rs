//! MPI error reporting. Real MPI aborts by default; this library returns
//! `Result` so the embedder can translate failures into guest-visible
//! error codes or traps.

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Destination or source rank outside the communicator.
    InvalidRank { rank: u32, size: u32 },
    /// Receive buffer smaller than the matched message
    /// (`MPI_ERR_TRUNCATE`).
    Truncated { message_len: usize, buffer_len: usize },
    /// Count/datatype mismatch (buffer length not a multiple of the
    /// datatype size).
    BadCount { bytes: usize, type_size: usize },
    /// Mismatched collective participation detected (e.g. differing
    /// byte counts for a Bcast).
    CollectiveMismatch(String),
    /// The world was torn down while a rank was blocked.
    WorldShutdown,
    /// Invalid communicator handle (embedder-level translation failure).
    InvalidComm(u32),
    /// Invalid datatype handle.
    InvalidDatatype(u32),
    /// Invalid reduction-op handle.
    InvalidOp(u32),
    /// A rank this operation depends on has failed (ULFM
    /// `MPI_ERR_PROC_FAILED`). `rank` is the *world* rank of the dead
    /// process; survivors keep the communicator and may continue with
    /// other peers, acknowledge the failure ([`crate::Comm::ack_failed`])
    /// or shrink ([`crate::Comm::shrink`]).
    RankFailed { rank: u32 },
    /// Buffered-send attach buffer missing or too small
    /// (`MPI_ERR_BUFFER`).
    NoBuffer { needed: usize, available: usize },
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            MpiError::Truncated { message_len, buffer_len } => write!(
                f,
                "message truncated: {message_len} bytes arrived, buffer holds {buffer_len}"
            ),
            MpiError::BadCount { bytes, type_size } => {
                write!(f, "buffer of {bytes} bytes is not a multiple of type size {type_size}")
            }
            MpiError::CollectiveMismatch(m) => write!(f, "collective mismatch: {m}"),
            MpiError::WorldShutdown => write!(f, "world shut down"),
            MpiError::InvalidComm(h) => write!(f, "invalid communicator handle {h}"),
            MpiError::InvalidDatatype(h) => write!(f, "invalid datatype handle {h}"),
            MpiError::InvalidOp(h) => write!(f, "invalid op handle {h}"),
            MpiError::RankFailed { rank } => write!(f, "rank {rank} failed"),
            MpiError::NoBuffer { needed, available } => write!(
                f,
                "buffered send needs {needed} bytes but the attach buffer holds {available}"
            ),
        }
    }
}

impl std::error::Error for MpiError {}

/// MPI-style integer error codes, for the embedder's C ABI (§3.6: most MPI
/// types and error codes are plain ints from the guest's perspective).
impl MpiError {
    pub fn code(&self) -> i32 {
        match self {
            MpiError::InvalidRank { .. } => 6,   // MPI_ERR_RANK
            MpiError::Truncated { .. } => 15,    // MPI_ERR_TRUNCATE
            MpiError::BadCount { .. } => 2,      // MPI_ERR_COUNT
            MpiError::CollectiveMismatch(_) => 16,
            MpiError::WorldShutdown => 14,
            MpiError::InvalidComm(_) => 5,       // MPI_ERR_COMM
            MpiError::InvalidDatatype(_) => 3,   // MPI_ERR_TYPE
            MpiError::InvalidOp(_) => 9,         // MPI_ERR_OP
            MpiError::RankFailed { .. } => 75,   // MPI_ERR_PROC_FAILED (ULFM)
            MpiError::NoBuffer { .. } => 1,      // MPI_ERR_BUFFER
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_nonzero_and_stable() {
        assert_eq!(MpiError::InvalidRank { rank: 9, size: 4 }.code(), 6);
        assert_eq!(MpiError::Truncated { message_len: 8, buffer_len: 4 }.code(), 15);
        assert_eq!(MpiError::InvalidComm(3).code(), 5);
        assert_eq!(MpiError::RankFailed { rank: 2 }.code(), 75);
    }

    #[test]
    fn display_mentions_details() {
        let e = MpiError::Truncated { message_len: 100, buffer_len: 10 };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10"));
    }
}

//! The progress engine: protocol selection (eager vs rendezvous), the
//! rendezvous handshake, and the shared delivery path used by blocking
//! receives and the request machinery in [`crate::request`].
//!
//! Matching is **arrival-time against posted receives**: every receive
//! registers a [`crate::message::RecvEntry`] with its rank's mailbox via
//! [`CommCtx::post_recv`], and [`CommCtx::start_send`]'s deposit matches
//! arrivals against the posted queue in posting order (wildcard rules
//! included) before any mailbox buffering happens. The matched message
//! parks in the entry; [`CommCtx::deliver`] then runs on the *receiving*
//! rank — copying the payload (straight from the sender's pinned buffer
//! for rendezvous), charging the virtual clock, and completing the
//! handshake — so sender threads never touch receiver buffers or clocks.
//!
//! # Protocols
//!
//! * **Eager** (payload ≤ [`ProtocolConfig::eager_threshold`]): the bytes
//!   are copied into the destination mailbox, consuming credit from its
//!   bounded buffer budget. Sends that cannot obtain credit — blocking or
//!   not — fall back to a rendezvous with a sender-owned copy, so the
//!   per-sender FIFO order is preserved without unbounded mailbox growth
//!   and backpressure stays *matchable* (a posted receive always lets a
//!   credit-starved sender through).
//! * **Rendezvous** (payload above the threshold): the sender enqueues a
//!   tiny RTS control message carrying a [`RendezvousSlot`] and keeps the
//!   payload in place. When the receiver matches the RTS it copies the
//!   bytes *directly* from the sender's buffer into the posted receive
//!   buffer — no intermediate heap copy — and completes the slot, which
//!   is the CTS + transfer collapsed into one step. Blocking sends wait on
//!   the slot; nonblocking sends complete at `Wait`/`Test`.
//!
//! # Virtual time
//!
//! The receive path charges the wire time of [`netsim::SystemProfile::p2p_time`],
//! which already includes the extra handshake latency above the profile's
//! rendezvous threshold — so simulated runs see the protocol switch. A
//! rendezvous *sender* additionally synchronizes its clock to the
//! receiver's completion time (the moment the CTS/done notification comes
//! back), making rendezvous sends synchronous in virtual time, as on real
//! fabrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::clock::{Clock, ClockMode};
use crate::comm::{Source, Status, Tag};
use crate::error::MpiError;
use crate::message::{Deposit, Message, Payload, RecvEntry, RtsPayload};
use crate::world::World;

/// Message-protocol parameters of a world. Derived from the netsim
/// profile in virtual-clock worlds; real-clock worlds use the defaults
/// (or an explicit config via `run_world_with_protocol`).
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Payloads above this many bytes use the rendezvous protocol.
    pub eager_threshold: usize,
    /// Per-mailbox eager-buffer byte budget (credit pool).
    pub eager_capacity: usize,
}

impl ProtocolConfig {
    /// Default for real-clock worlds: 64 KiB eager limit, 16 MiB of
    /// buffered eager traffic per rank.
    pub fn default_real() -> ProtocolConfig {
        ProtocolConfig { eager_threshold: 64 << 10, eager_capacity: 16 << 20 }
    }

    /// The seed's legacy behavior: every message is eagerly copied into an
    /// unbounded mailbox. Kept for A/B benchmarking.
    pub fn eager_only() -> ProtocolConfig {
        ProtocolConfig { eager_threshold: usize::MAX, eager_capacity: usize::MAX }
    }

    /// Config implied by a clock mode: virtual worlds switch protocols at
    /// the profile's rendezvous threshold (so the cost model and the
    /// executed protocol agree), real worlds use the defaults.
    pub fn from_mode(mode: &ClockMode) -> ProtocolConfig {
        match mode {
            ClockMode::Real => ProtocolConfig::default_real(),
            ClockMode::Virtual(model) => ProtocolConfig {
                eager_threshold: model.profile.rendezvous_threshold,
                eager_capacity: (model.profile.rendezvous_threshold * 8).max(16 << 20),
            },
        }
    }
}

/// World-wide protocol counters (diagnostics and the zero-copy tests).
#[derive(Debug, Default)]
pub struct ProtocolStats {
    pub eager_messages: AtomicU64,
    /// Payload bytes that were heap-copied into mailboxes (eager path).
    pub eager_bytes_copied: AtomicU64,
    /// Nonblocking eager sends that could not obtain credit and were
    /// deferred through a sender-owned rendezvous.
    pub deferred_eager_messages: AtomicU64,
    pub rendezvous_messages: AtomicU64,
    /// Payload bytes moved by the rendezvous protocol (single direct copy,
    /// never buffered in a mailbox).
    pub rendezvous_bytes: AtomicU64,
    /// Arrivals that matched an already-posted receive (the pre-posted
    /// fast path: no mailbox buffering, no eager credit; a rendezvous RTS
    /// matched this way is answerable straight into the posted buffer).
    pub preposted_matches: AtomicU64,
    /// Sends successfully cancelled (`MPI_Cancel` retracting a pending
    /// credit-deferred or unmatched rendezvous send before any receive
    /// matched it).
    pub cancelled_sends: AtomicU64,
    /// RTS control messages removed from a destination queue by send-side
    /// cancellation. Today every cancelled send retracts exactly one RTS,
    /// so the counters move together; they are kept separate so a future
    /// cancellable-eager path cannot silently conflate them.
    pub retracted_rts: AtomicU64,
}

/// Point-in-time copy of [`ProtocolStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolSnapshot {
    pub eager_messages: u64,
    pub eager_bytes_copied: u64,
    pub deferred_eager_messages: u64,
    pub rendezvous_messages: u64,
    pub rendezvous_bytes: u64,
    pub preposted_matches: u64,
    pub cancelled_sends: u64,
    pub retracted_rts: u64,
}

impl ProtocolStats {
    /// The snapshot as named counters for the unified metrics registry
    /// (`obs::MetricSet`); names are stable, prefixed `mpi.`.
    pub fn metric_entries(&self) -> [(&'static str, u64); 8] {
        let s = self.snapshot();
        [
            ("mpi.eager_messages", s.eager_messages),
            ("mpi.eager_bytes_copied", s.eager_bytes_copied),
            ("mpi.deferred_eager_messages", s.deferred_eager_messages),
            ("mpi.rendezvous_messages", s.rendezvous_messages),
            ("mpi.rendezvous_bytes", s.rendezvous_bytes),
            ("mpi.preposted_matches", s.preposted_matches),
            ("mpi.cancelled_sends", s.cancelled_sends),
            ("mpi.retracted_rts", s.retracted_rts),
        ]
    }

    pub fn snapshot(&self) -> ProtocolSnapshot {
        ProtocolSnapshot {
            eager_messages: self.eager_messages.load(Ordering::Relaxed),
            eager_bytes_copied: self.eager_bytes_copied.load(Ordering::Relaxed),
            deferred_eager_messages: self.deferred_eager_messages.load(Ordering::Relaxed),
            rendezvous_messages: self.rendezvous_messages.load(Ordering::Relaxed),
            rendezvous_bytes: self.rendezvous_bytes.load(Ordering::Relaxed),
            preposted_matches: self.preposted_matches.load(Ordering::Relaxed),
            cancelled_sends: self.cancelled_sends.load(Ordering::Relaxed),
            retracted_rts: self.retracted_rts.load(Ordering::Relaxed),
        }
    }
}

impl ProtocolSnapshot {
    /// The snapshot as a fixed-order word list — the wire format of the
    /// guest-visible `mpiwasm_stats` host call (little-endian u64s in this
    /// exact order; adding fields appends, never reorders).
    pub fn as_words(&self) -> [u64; 8] {
        [
            self.eager_messages,
            self.eager_bytes_copied,
            self.deferred_eager_messages,
            self.rendezvous_messages,
            self.rendezvous_bytes,
            self.preposted_matches,
            self.cancelled_sends,
            self.retracted_rts,
        ]
    }
}

// --- rendezvous slot ----------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum RdvState {
    /// RTS posted; payload waiting on the sender's side.
    Posted,
    /// Receiver copied the payload. Carries the receiver's virtual clock
    /// at completion (µs; 0 in real-clock mode) for sender-side charging.
    Complete(u64 /* f64 bits */),
    /// The transfer will never happen; carries the error both sides
    /// observe (shutdown, teardown, or a dependent rank failure).
    Failed(MpiError),
}

/// Sender-side payload handle for one rendezvous transfer.
///
/// `src`/`len` describe the payload bytes. The protocol guarantees their
/// validity for the receiver's read: either the sending thread is blocked
/// inside `send` until [`RendezvousSlot::complete`] runs, or (nonblocking
/// sends) the buffer is pinned by MPI semantics until the matching
/// `Wait`/`Test` — and `Request::drop` cancels or completes the transfer
/// before releasing the borrow. Deferred eager sends pin their own copy
/// in `_owned`.
pub(crate) struct RendezvousSlot {
    src: *const u8,
    len: usize,
    /// Backing storage for credit-deferred eager sends; `src` points into
    /// it. `None` for true zero-copy rendezvous of user buffers.
    _owned: Option<Box<[u8]>>,
    state: Mutex<RdvState>,
    done: Condvar,
}

// Safety: the raw pointer is only dereferenced by the receiving thread
// while the protocol pins the sender buffer (see struct docs).
unsafe impl Send for RendezvousSlot {}
unsafe impl Sync for RendezvousSlot {}

impl std::fmt::Debug for RendezvousSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RendezvousSlot")
            .field("len", &self.len)
            .field("owned", &self._owned.is_some())
            .field("state", &*self.state.lock())
            .finish()
    }
}

impl RendezvousSlot {
    pub fn for_buffer(ptr: *const u8, len: usize) -> Arc<RendezvousSlot> {
        Arc::new(RendezvousSlot {
            src: ptr,
            len,
            _owned: None,
            state: Mutex::new(RdvState::Posted),
            done: Condvar::new(),
        })
    }

    pub fn for_owned(data: Box<[u8]>) -> Arc<RendezvousSlot> {
        let (src, len) = (data.as_ptr(), data.len());
        Arc::new(RendezvousSlot {
            src,
            len,
            _owned: Some(data),
            state: Mutex::new(RdvState::Posted),
            done: Condvar::new(),
        })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slot pins a sender-owned copy (a credit-deferred eager
    /// send) rather than the user's buffer (true zero-copy rendezvous).
    /// Lets the receive path tag trace events with the actual protocol.
    pub fn is_owned(&self) -> bool {
        self._owned.is_some()
    }

    /// Receiver: copy the payload into `dst` (the first `dst.len()`
    /// bytes) and complete the handshake — all under the state lock, so
    /// the copy can never race the sender's buffer being released: the
    /// sender only unblocks once the state leaves `Posted`, and a slot
    /// failed by shutdown (whose buffer may already be gone) is never
    /// read.
    pub fn consume_into(&self, dst: &mut [u8], recv_clock_us: f64) -> Result<(), MpiError> {
        let mut st = self.state.lock();
        match &*st {
            RdvState::Posted => {
                let take = dst.len().min(self.len);
                dst[..take].copy_from_slice(unsafe {
                    std::slice::from_raw_parts(self.src, take)
                });
                *st = RdvState::Complete(recv_clock_us.to_bits());
                drop(st);
                self.done.notify_all();
                Ok(())
            }
            RdvState::Failed(err) => Err(err.clone()),
            RdvState::Complete(_) => Err(MpiError::WorldShutdown),
        }
    }

    /// Receiver: copy the payload into an owned buffer and complete.
    pub fn consume_vec(&self, recv_clock_us: f64) -> Result<Vec<u8>, MpiError> {
        let mut out = vec![0u8; self.len];
        self.consume_into(&mut out, recv_clock_us)?;
        Ok(out)
    }

    /// Receiver: finish the handshake without reading the payload (the
    /// truncation path consumes the message but cannot take the bytes).
    pub fn complete(&self, recv_clock_us: f64) {
        let mut st = self.state.lock();
        if matches!(*st, RdvState::Posted) {
            *st = RdvState::Complete(recv_clock_us.to_bits());
        }
        drop(st);
        self.done.notify_all();
    }

    /// Mark the transfer as dead if still pending (shutdown paths).
    pub fn fail_if_posted(&self) {
        self.fail_if_posted_with(MpiError::WorldShutdown);
    }

    /// Mark the transfer as dead with a specific error (rank-failure
    /// propagation: a parked sender wakes with `RankFailed` instead of
    /// the generic shutdown error).
    pub fn fail_if_posted_with(&self, err: MpiError) {
        let mut st = self.state.lock();
        if matches!(*st, RdvState::Posted) {
            *st = RdvState::Failed(err);
        }
        drop(st);
        self.done.notify_all();
    }

    /// Sender: block until the receiver finishes. Returns the receiver's
    /// completion clock (µs).
    pub fn wait_done(&self) -> Result<f64, MpiError> {
        let mut st = self.state.lock();
        loop {
            match &*st {
                RdvState::Complete(bits) => return Ok(f64::from_bits(*bits)),
                RdvState::Failed(err) => return Err(err.clone()),
                RdvState::Posted => self.done.wait(&mut st),
            }
        }
    }

    /// Sender: non-blocking completion check.
    pub fn poll_done(&self) -> Result<Option<f64>, MpiError> {
        match &*self.state.lock() {
            RdvState::Complete(bits) => Ok(Some(f64::from_bits(*bits))),
            RdvState::Failed(err) => Err(err.clone()),
            RdvState::Posted => Ok(None),
        }
    }
}

// --- per-request communicator context -----------------------------------

/// Everything a detached operation (a [`crate::request::Request`]) needs
/// from its communicator: the world, the group mapping, identity, and the
/// rank's clock. Cheap Arc clones of the `Comm` internals.
#[derive(Clone)]
pub(crate) struct CommCtx {
    pub world: Arc<World>,
    pub group: Arc<Vec<u32>>,
    pub rank: u32,
    pub comm_id: u64,
    pub clock: Arc<Mutex<Clock>>,
    /// Failure epoch this rank has acknowledged (`MPI_Comm_failure_ack`):
    /// any-source receives posted afterwards ignore failures at or below
    /// it. Shared across all handles/contexts of one rank.
    pub acked: Arc<AtomicU64>,
}

impl CommCtx {
    pub fn size(&self) -> u32 {
        self.group.len() as u32
    }

    pub fn my_world(&self) -> u32 {
        self.group[self.rank as usize]
    }

    /// ULFM collective semantics: a collective over a communicator with a
    /// failed member raises `RankFailed` at *every* member, not only at
    /// those whose schedule happens to touch the dead rank. Without this,
    /// a survivor whose next exchange partner is alive parks forever on a
    /// contribution the partner's aborted schedule will never send. One
    /// atomic load when nobody has failed; the membership scan only runs
    /// after a failure.
    pub fn member_failure(&self) -> Option<MpiError> {
        if !self.world.any_failed() {
            return None;
        }
        self.group
            .iter()
            .find(|w| self.world.is_failed(**w))
            .map(|w| MpiError::RankFailed { rank: *w })
    }

    /// Emit a flight-recorder event on this rank's track. One pointer test
    /// when tracing is off; the closure only runs when on.
    #[inline]
    pub(crate) fn trace(&self, kind: impl FnOnce() -> obs::EventKind) {
        self.world.emit(self.my_world(), &self.clock, kind);
    }

    /// Charge the per-call software overhead (virtual-clock worlds only).
    pub fn charge_call(&self) {
        if let ClockMode::Virtual(model) = &self.world.mode {
            self.clock.lock().charge(model.call_overhead_us);
        }
    }

    pub fn check_rank(&self, rank: u32) -> Result<(), MpiError> {
        if rank >= self.size() {
            return Err(MpiError::InvalidRank { rank, size: self.size() });
        }
        Ok(())
    }

    /// `RankFailed` for comm rank `r` if its process has died.
    pub fn check_alive(&self, r: u32) -> Result<(), MpiError> {
        let w = self.group[r as usize];
        if self.world.is_failed(w) {
            return Err(MpiError::RankFailed { rank: w });
        }
        Ok(())
    }

    /// The error a blocked wildcard operation should observe: the first
    /// failed rank this rank has not acknowledged yet, if any.
    pub fn unacked_failure(&self) -> Option<MpiError> {
        self.world
            .failed_since(self.acked.load(Ordering::Relaxed))
            .map(|rank| MpiError::RankFailed { rank })
    }

    /// Matching predicate for a receive (delegates to
    /// [`Message::matches`]; see there for the wildcard rules).
    pub(crate) fn matcher(
        comm_id: u64,
        src: Source,
        tag: Tag,
    ) -> impl FnMut(&Message) -> bool {
        move |m: &Message| m.matches(comm_id, src, tag)
    }

    /// Post a receive with this rank's mailbox: either claims the
    /// earliest queued match immediately or enters the posted queue,
    /// where arrivals match it in posting order (see `crate::message`).
    /// The caller keeps the destination buffer and performs delivery via
    /// [`CommCtx::deliver`] once the entry yields its message.
    pub fn post_recv(&self, src: Source, tag: Tag) -> Arc<RecvEntry> {
        self.trace(|| obs::EventKind::RecvPost {
            peer: match src {
                Source::Rank(r) => self.group.get(r as usize).map(|w| *w as i32).unwrap_or(-1),
                Source::Any => -1,
            },
            tag: match tag {
                Tag::Value(t) => t,
                Tag::Any => -1,
            },
        });
        let src_world = match src {
            Source::Rank(r) => self.group.get(r as usize).copied(),
            Source::Any => None,
        };
        let entry = RecvEntry::with_src_world(self.comm_id, src, tag, src_world);
        self.world.mailbox(self.my_world()).post_recv(&entry);
        self.world.note_progress();
        // Failure checks *after* registration close the race with a
        // concurrent `fail_rank` sweep: whichever runs second sees the
        // other's effect. `fail_with` only fails a still-posted entry, so
        // a message that arrived before the failure stays deliverable.
        // A failed rank's own post fails immediately — `fail_own` only
        // sweeps entries posted before the death, and a dead rank parked
        // on a fresh receive would wait forever (senders refuse dead
        // destinations).
        let me = self.my_world();
        if self.world.is_failed(me) {
            entry.fail_with(MpiError::RankFailed { rank: me });
            return entry;
        }
        // Collective sub-receives (reserved negative tags) abort on *any*
        // failed member, matching the collective poll path: a blocking
        // collective must not park on a live partner whose own schedule
        // aborted against the dead rank.
        if matches!(tag, Tag::Value(t) if t < 0) {
            if let Some(err) = self.member_failure() {
                entry.fail_with(err);
                return entry;
            }
        }
        match src {
            Source::Rank(_) => {
                if let Some(w) = src_world {
                    if self.world.is_failed(w) {
                        entry.fail_with(MpiError::RankFailed { rank: w });
                    }
                }
            }
            Source::Any => {
                if let Some(err) = self.unacked_failure() {
                    entry.fail_with(err);
                }
            }
        }
        entry
    }

    /// Unpost a receive (request drop / free). A message already matched
    /// to the entry is reinserted into the mailbox at its arrival
    /// position, staying available to other receives.
    pub fn cancel_recv(&self, entry: &Arc<RecvEntry>) {
        self.world.mailbox(self.my_world()).cancel_posted(entry);
    }

    /// Non-blocking matched take from the *message queue* only. Used by
    /// the collective schedules, whose internal tags never overlap a
    /// posted receive's matcher. A miss from a specific source checks the
    /// failed-rank set — message first, so data that arrived before the
    /// failure still delivers — which is what makes every nonblocking
    /// collective round failure-aware without per-schedule changes.
    pub fn try_take(&self, src: Source, tag: Tag) -> Result<Option<Message>, MpiError> {
        let got = self.world.mailbox(self.my_world())
            .try_take_matching(Self::matcher(self.comm_id, src, tag))?;
        if got.is_some() {
            self.world.note_progress();
            return Ok(got);
        }
        if let Source::Rank(r) = src {
            self.check_alive(r)?;
        }
        Ok(None)
    }

    /// Stamp a new outgoing message (departure time, identity). The
    /// mailbox assigns `seq` at deposit.
    fn message(&self, tag: i32, payload: Payload) -> Message {
        Message {
            src_in_comm: self.rank,
            tag,
            comm_id: self.comm_id,
            payload,
            sent_at_us: self.clock.lock().virtual_us,
            src_world: self.my_world(),
            seq: 0,
            flow: self.world.next_flow(),
        }
    }

    /// Build (and count) an eager message carrying a copy of `buf`.
    fn eager_message(&self, buf: &[u8], tag: i32) -> Message {
        let stats = &self.world.stats;
        stats.eager_messages.fetch_add(1, Ordering::Relaxed);
        stats.eager_bytes_copied.fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.message(tag, Payload::Eager(buf.into()))
    }

    /// Initiate a send without blocking: eager when the payload fits under
    /// the threshold and credit is available, rendezvous otherwise.
    ///
    /// # Safety contract (not enforced by types)
    /// `ptr..ptr+len` must stay valid and unmodified until the returned
    /// [`SendOp`] completes (`poll`/`wait`) or is cancelled.
    pub fn start_send(
        &self,
        ptr: *const u8,
        len: usize,
        dest: u32,
        tag: i32,
    ) -> Result<SendOp, MpiError> {
        self.check_rank(dest)?;
        let me_world = self.my_world();
        if self.world.is_failed(me_world) {
            // A dead sender must never park in a rendezvous handshake a
            // live receiver may never answer.
            return Err(MpiError::RankFailed { rank: me_world });
        }
        let dest_world = self.group[dest as usize];
        if self.world.is_failed(dest_world) {
            return Err(MpiError::RankFailed { rank: dest_world });
        }
        let mailbox = self.world.mailbox(dest_world);
        let stats = &self.world.stats;
        self.world.note_progress();
        // Injected wire faults (deterministic, from the world's fault
        // plan): a dropped message is simply never deposited — the send
        // completes, the receiver waits for bytes that never arrive (the
        // hang watchdog's detection scenario); a delay fault shifts the
        // departure stamp so virtual-clock receivers see the extra wire
        // time.
        let wire_fault = self.world.fault_wire(self.my_world(), dest_world);
        if wire_fault.drop {
            self.trace(|| obs::EventKind::SendStart {
                peer: dest_world,
                tag,
                bytes: len as u32,
                protocol: obs::Protocol::Eager,
                matched_posted: false,
                flow: 0,
            });
            return Ok(SendOp::done());
        }

        let count_match = |d: &Deposit| -> bool {
            let matched = matches!(d, Deposit::Matched);
            if matched {
                stats.preposted_matches.fetch_add(1, Ordering::Relaxed);
            }
            matched
        };
        // Trace the departure: protocol decision, bytes, whether the
        // deposit hit an already-posted receive, and the flow id tying
        // this send to its eventual delivery event on the receiver.
        let trace_send = |protocol: obs::Protocol, matched: bool, flow: u64| {
            self.trace(|| obs::EventKind::SendStart {
                peer: dest_world,
                tag,
                bytes: len as u32,
                protocol,
                matched_posted: matched,
                flow,
            });
        };

        if dest_world == self.my_world() {
            // Self-sends are always eagerly buffered, regardless of size
            // or credit: the same thread must later receive the message,
            // so a rendezvous handshake could never be answered and a
            // credit wait could never be satisfied.
            let buf = unsafe { std::slice::from_raw_parts(ptr, len) };
            let msg = self.eager_message(buf, tag);
            let flow = msg.flow;
            let matched = count_match(&mailbox.deposit(msg, false));
            trace_send(obs::Protocol::SelfMsg, matched, flow);
            return Ok(SendOp::done());
        }

        if len <= self.world.protocol.eager_threshold {
            let buf = unsafe { std::slice::from_raw_parts(ptr, len) };
            let mut msg = self.eager_message(buf, tag);
            msg.sent_at_us += wire_fault.delay_us;
            let flow = msg.flow;
            match mailbox.deposit(msg, true) {
                d @ (Deposit::Queued | Deposit::Matched) => {
                    let matched = count_match(&d);
                    trace_send(obs::Protocol::Eager, matched, flow);
                    Ok(SendOp::done())
                }
                Deposit::NoCredit(mut msg) => {
                    // No credit: defer through a sender-owned rendezvous so
                    // FIFO order is preserved without growing the mailbox.
                    let payload =
                        std::mem::replace(&mut msg.payload, Payload::Eager(Box::new([])));
                    let Payload::Eager(data) = payload else { unreachable!() };
                    stats.deferred_eager_messages.fetch_add(1, Ordering::Relaxed);
                    let slot = RendezvousSlot::for_owned(data);
                    let flow = msg.flow;
                    let matched = count_match(&mailbox.deposit(
                        Message {
                            payload: Payload::Rendezvous(RtsPayload(Arc::clone(&slot))),
                            ..msg
                        },
                        false,
                    ));
                    trace_send(obs::Protocol::EagerDeferred, matched, flow);
                    self.recheck_dest(dest_world, &slot)?;
                    Ok(SendOp::in_flight(slot, dest_world, flow))
                }
            }
        } else {
            stats.rendezvous_messages.fetch_add(1, Ordering::Relaxed);
            stats.rendezvous_bytes.fetch_add(len as u64, Ordering::Relaxed);
            let slot = RendezvousSlot::for_buffer(ptr, len);
            let mut msg = self.message(tag, Payload::Rendezvous(RtsPayload(Arc::clone(&slot))));
            msg.sent_at_us += wire_fault.delay_us;
            let flow = msg.flow;
            let matched = count_match(&mailbox.deposit(msg, false));
            trace_send(obs::Protocol::Rendezvous, matched, flow);
            self.recheck_dest(dest_world, &slot)?;
            Ok(SendOp::in_flight(slot, dest_world, flow))
        }
    }

    /// Initiate a send whose payload the protocol layer *owns* (`data`
    /// moved in). Two callers:
    ///
    /// * `sync = true` — synchronous mode (`MPI_Ssend`/`Issend`) below
    ///   the rendezvous threshold: the payload rides an owned
    ///   [`RendezvousSlot`] even though it would fit eagerly, so the op
    ///   completes only when the receiver drains it — the receipt
    ///   acknowledgment synchronous mode requires. Above the threshold
    ///   callers use [`CommCtx::start_send`]; true rendezvous already
    ///   has the semantics.
    /// * `sync = false` — buffered/packed sends (`MPI_Bsend`, derived
    ///   datatypes): the copy already decouples the caller's buffer, so
    ///   the protocol choice mirrors [`CommCtx::start_send`], with the
    ///   eager path moving `data` into the mailbox instead of re-copying.
    ///
    /// Self-sends always complete locally (the mailbox buffers the
    /// payload; a same-thread handshake could never be answered), and a
    /// dropped wire fault completes the send as in `start_send` — in both
    /// cases even for `sync`, where real MPI would block: matching the
    /// eager fault model keeps the watchdog's hung-*receiver* scenario.
    pub fn start_send_owned(
        &self,
        data: Box<[u8]>,
        dest: u32,
        tag: i32,
        sync: bool,
    ) -> Result<SendOp, MpiError> {
        self.check_rank(dest)?;
        let me_world = self.my_world();
        if self.world.is_failed(me_world) {
            return Err(MpiError::RankFailed { rank: me_world });
        }
        let dest_world = self.group[dest as usize];
        if self.world.is_failed(dest_world) {
            return Err(MpiError::RankFailed { rank: dest_world });
        }
        let mailbox = self.world.mailbox(dest_world);
        let stats = &self.world.stats;
        self.world.note_progress();
        let len = data.len();
        let wire_fault = self.world.fault_wire(me_world, dest_world);
        if wire_fault.drop {
            self.trace(|| obs::EventKind::SendStart {
                peer: dest_world,
                tag,
                bytes: len as u32,
                protocol: obs::Protocol::Eager,
                matched_posted: false,
                flow: 0,
            });
            return Ok(SendOp::done());
        }

        let count_match = |d: &Deposit| -> bool {
            let matched = matches!(d, Deposit::Matched);
            if matched {
                stats.preposted_matches.fetch_add(1, Ordering::Relaxed);
            }
            matched
        };
        let trace_send = |protocol: obs::Protocol, matched: bool, flow: u64| {
            self.trace(|| obs::EventKind::SendStart {
                peer: dest_world,
                tag,
                bytes: len as u32,
                protocol,
                matched_posted: matched,
                flow,
            });
        };

        if dest_world == me_world {
            stats.eager_messages.fetch_add(1, Ordering::Relaxed);
            stats.eager_bytes_copied.fetch_add(len as u64, Ordering::Relaxed);
            let msg = self.message(tag, Payload::Eager(data));
            let flow = msg.flow;
            let matched = count_match(&mailbox.deposit(msg, false));
            trace_send(obs::Protocol::SelfMsg, matched, flow);
            return Ok(SendOp::done());
        }

        if !sync && len <= self.world.protocol.eager_threshold {
            stats.eager_messages.fetch_add(1, Ordering::Relaxed);
            stats.eager_bytes_copied.fetch_add(len as u64, Ordering::Relaxed);
            let mut msg = self.message(tag, Payload::Eager(data));
            msg.sent_at_us += wire_fault.delay_us;
            let flow = msg.flow;
            match mailbox.deposit(msg, true) {
                d @ (Deposit::Queued | Deposit::Matched) => {
                    let matched = count_match(&d);
                    trace_send(obs::Protocol::Eager, matched, flow);
                    Ok(SendOp::done())
                }
                Deposit::NoCredit(mut msg) => {
                    let payload =
                        std::mem::replace(&mut msg.payload, Payload::Eager(Box::new([])));
                    let Payload::Eager(data) = payload else { unreachable!() };
                    stats.deferred_eager_messages.fetch_add(1, Ordering::Relaxed);
                    let slot = RendezvousSlot::for_owned(data);
                    let flow = msg.flow;
                    let matched = count_match(&mailbox.deposit(
                        Message {
                            payload: Payload::Rendezvous(RtsPayload(Arc::clone(&slot))),
                            ..msg
                        },
                        false,
                    ));
                    trace_send(obs::Protocol::EagerDeferred, matched, flow);
                    self.recheck_dest(dest_world, &slot)?;
                    Ok(SendOp::in_flight(slot, dest_world, flow))
                }
            }
        } else {
            if sync && len <= self.world.protocol.eager_threshold {
                // Sync-below-threshold: counts as a deferred eager send
                // (same owned-slot machinery, same receive-side trace tag).
                stats.deferred_eager_messages.fetch_add(1, Ordering::Relaxed);
            } else {
                stats.rendezvous_messages.fetch_add(1, Ordering::Relaxed);
                stats.rendezvous_bytes.fetch_add(len as u64, Ordering::Relaxed);
            }
            let slot = RendezvousSlot::for_owned(data);
            let mut msg =
                self.message(tag, Payload::Rendezvous(RtsPayload(Arc::clone(&slot))));
            msg.sent_at_us += wire_fault.delay_us;
            let flow = msg.flow;
            let matched = count_match(&mailbox.deposit(msg, false));
            trace_send(obs::Protocol::EagerDeferred, matched, flow);
            self.recheck_dest(dest_world, &slot)?;
            Ok(SendOp::in_flight(slot, dest_world, flow))
        }
    }

    /// Initiate a synchronous-mode send (`MPI_Ssend`/`Issend`): completion
    /// implies the receiver has matched the message. Above the rendezvous
    /// threshold this *is* [`CommCtx::start_send`] — the handshake already
    /// parks the sender until the receiver drains the payload. Below it
    /// the payload is copied into an owned slot that travels the deferred
    /// eager path, whose completion is receiver-driven too.
    ///
    /// # Safety contract (not enforced by types)
    /// As [`CommCtx::start_send`]: above the threshold `ptr..ptr+len` must
    /// stay valid until the returned [`SendOp`] completes or is cancelled.
    pub fn start_send_sync(
        &self,
        ptr: *const u8,
        len: usize,
        dest: u32,
        tag: i32,
    ) -> Result<SendOp, MpiError> {
        if len > self.world.protocol.eager_threshold {
            return self.start_send(ptr, len, dest, tag);
        }
        self.check_rank(dest)?;
        let data: Box<[u8]> = unsafe { std::slice::from_raw_parts(ptr, len) }.into();
        self.start_send_owned(data, dest, tag, true)
    }

    /// Close the race between our failed-destination pre-check and a
    /// concurrent `fail_rank` sweep of the destination mailbox: a
    /// rendezvous RTS deposited *after* the sweep would otherwise park
    /// its sender forever. `fail_rank` marks the rank failed before
    /// sweeping, so re-checking after the deposit sees every failure the
    /// sweep could have missed.
    fn recheck_dest(
        &self,
        dest_world: u32,
        slot: &Arc<RendezvousSlot>,
    ) -> Result<(), MpiError> {
        if self.world.is_failed(dest_world) {
            let err = MpiError::RankFailed { rank: dest_world };
            self.world.mailbox(dest_world).retract_rendezvous(slot);
            slot.fail_if_posted_with(err.clone());
            return Err(err);
        }
        Ok(())
    }

    /// Sharpen a generic slot/entry error: if the peer we were talking to
    /// is in the failed set, the real cause is its death — report
    /// `RankFailed` rather than `WorldShutdown` (covers slots failed by a
    /// dying rank's own request teardown, which does not know why it is
    /// unwinding).
    pub fn refine_peer_err(&self, err: MpiError, peer_world: u32) -> MpiError {
        if matches!(err, MpiError::WorldShutdown) && self.world.is_failed(peer_world) {
            MpiError::RankFailed { rank: peer_world }
        } else {
            err
        }
    }

    /// Blocking send: the same initiation as the nonblocking path, then
    /// park until complete. Eager sends with credit return immediately;
    /// credit-starved eager sends and rendezvous sends park on their slot
    /// — which the receiver can *match* (the RTS rides the queue), unlike
    /// a wait for buffer credit, so a posted matching receive always lets
    /// a blocking send through (MPI's progress guarantee: rooted
    /// collectives like gather would otherwise deadlock once aggregate
    /// eager traffic exceeds the budget).
    pub fn send_blocking(
        &self,
        buf: &[u8],
        dest: u32,
        tag: i32,
    ) -> Result<(), MpiError> {
        let mut op = self.start_send(buf.as_ptr(), buf.len(), dest, tag)?;
        op.wait(self)
    }

    /// Deliver a matched message into `dst` (or an owned vec when `dst` is
    /// `None`), advancing the receiver's virtual clock and completing the
    /// rendezvous handshake when applicable.
    ///
    /// On truncation the message is consumed and the handshake still
    /// completes (the sender must not hang on the receiver's error), as in
    /// real MPI.
    pub fn deliver(
        &self,
        msg: Message,
        dst: Option<&mut [u8]>,
    ) -> Result<(Status, Option<Vec<u8>>), MpiError> {
        let len = msg.payload.len();
        self.world.note_progress();
        let mut recv_clock_us = 0.0;
        if let ClockMode::Virtual(model) = &self.world.mode {
            let wire = model.profile.p2p_time(msg.src_world, self.my_world(), len);
            let mut clock = self.clock.lock();
            clock.advance_to(msg.sent_at_us + wire.as_micros());
            clock.charge(model.call_overhead_us);
            recv_clock_us = clock.virtual_us;
        }
        let status = Status::msg(msg.src_in_comm, msg.tag, len);
        // Delivery always runs on the receiving rank: trace the arrival
        // (timestamped *after* the wire-time advance, so virtual traces
        // put the event at simulated arrival time) with the protocol the
        // payload actually travelled under.
        self.trace(|| obs::EventKind::RecvDone {
            peer: msg.src_world,
            tag: msg.tag,
            bytes: len as u32,
            protocol: match &msg.payload {
                Payload::Eager(_) if msg.src_world == self.my_world() => obs::Protocol::SelfMsg,
                Payload::Eager(_) => obs::Protocol::Eager,
                Payload::Rendezvous(rts) if rts.0.is_owned() => obs::Protocol::EagerDeferred,
                Payload::Rendezvous(_) => obs::Protocol::Rendezvous,
            },
            flow: msg.flow,
        });

        match msg.payload {
            Payload::Eager(data) => match dst {
                Some(buf) => {
                    if data.len() > buf.len() {
                        return Err(MpiError::Truncated {
                            message_len: data.len(),
                            buffer_len: buf.len(),
                        });
                    }
                    buf[..data.len()].copy_from_slice(&data);
                    Ok((status, None))
                }
                None => Ok((status, Some(data.into_vec()))),
            },
            Payload::Rendezvous(rts) => {
                let slot = &rts.0;
                match dst {
                    Some(buf) => {
                        if slot.len() > buf.len() {
                            // Consume + complete so the sender proceeds.
                            slot.complete(recv_clock_us);
                            return Err(MpiError::Truncated {
                                message_len: slot.len(),
                                buffer_len: buf.len(),
                            });
                        }
                        // The direct handoff: sender buffer -> posted
                        // receive buffer, no intermediate copy. Errors if
                        // the slot already failed (shutdown): a stale RTS
                        // must never be read, its buffer may be gone.
                        slot.consume_into(&mut buf[..slot.len()], recv_clock_us)
                            .map_err(|e| self.refine_peer_err(e, msg.src_world))?;
                        Ok((status, None))
                    }
                    None => {
                        let data = slot
                            .consume_vec(recv_clock_us)
                            .map_err(|e| self.refine_peer_err(e, msg.src_world))?;
                        Ok((status, Some(data)))
                    }
                }
            }
        }
    }
}

// --- send operation handle ----------------------------------------------

/// An initiated send. Eager sends with credit complete immediately;
/// rendezvous (and credit-deferred) sends complete when the receiver
/// drains the payload.
pub(crate) struct SendOp {
    state: SendState,
}

enum SendState {
    Done,
    InFlight { slot: Arc<RendezvousSlot>, dest_world: u32, flow: u64 },
}

impl SendOp {
    fn done() -> SendOp {
        SendOp { state: SendState::Done }
    }

    fn in_flight(slot: Arc<RendezvousSlot>, dest_world: u32, flow: u64) -> SendOp {
        SendOp { state: SendState::InFlight { slot, dest_world, flow } }
    }

    fn on_complete(ctx: &CommCtx, recv_clock_us: f64, dest_world: u32, flow: u64) {
        // Rendezvous sends are synchronous: the sender's clock catches up
        // to the receiver's completion time (the CTS/done round trip is
        // inside the profile's handshake latency, already charged on the
        // receive path).
        if matches!(ctx.world.mode, ClockMode::Virtual(_)) {
            ctx.clock.lock().advance_to(recv_clock_us);
        }
        ctx.world.note_progress();
        // Handshake phase 3 from the sender's view: payload consumed,
        // buffer released. Timestamped after the clock sync above.
        ctx.trace(|| obs::EventKind::SendDone { peer: dest_world, flow });
    }

    /// Non-blocking completion check.
    pub fn poll(&mut self, ctx: &CommCtx) -> Result<bool, MpiError> {
        match &self.state {
            SendState::Done => Ok(true),
            SendState::InFlight { slot, dest_world, flow } => {
                match slot.poll_done().map_err(|e| ctx.refine_peer_err(e, *dest_world))? {
                    Some(recv_us) => {
                        Self::on_complete(ctx, recv_us, *dest_world, *flow);
                        self.state = SendState::Done;
                        Ok(true)
                    }
                    None => Ok(false),
                }
            }
        }
    }

    /// Block until the receiver completes the transfer.
    pub fn wait(&mut self, ctx: &CommCtx) -> Result<(), MpiError> {
        match &self.state {
            SendState::Done => Ok(()),
            SendState::InFlight { slot, dest_world, flow } => {
                let recv_us =
                    slot.wait_done().map_err(|e| ctx.refine_peer_err(e, *dest_world))?;
                Self::on_complete(ctx, recv_us, *dest_world, *flow);
                self.state = SendState::Done;
                Ok(())
            }
        }
    }

    /// Cancel or finish the transfer so the sender-side buffer can be
    /// released (called from `Request::drop` and error paths). The RTS
    /// stays queued: failing the slot means a receiver that matches it
    /// wakes with an error instead of waiting forever for a message that
    /// was un-sent, and the state-locked consume path guarantees the (now
    /// invalid) buffer pointer is never dereferenced. If the receiver is
    /// mid-copy, `fail_if_posted` blocks on the state lock until the copy
    /// finishes, so the buffer outlives every read either way.
    pub fn cancel(&mut self, _ctx: &CommCtx) {
        if let SendState::InFlight { slot, .. } = &self.state {
            slot.fail_if_posted();
            self.state = SendState::Done;
        }
    }

    /// `MPI_Cancel` on a pending send: retract the message if — and only
    /// if — its RTS is still queued unmatched at the destination (a
    /// credit-deferred eager send or an unanswered rendezvous). Returns
    /// `true` when the send was retracted; `false` when it is past
    /// cancellation (completed eagerly at initiation, or its RTS already
    /// matched a receive) and must complete normally. Unlike
    /// [`SendOp::cancel`], the RTS does not stay queued with a poisoned
    /// slot: the message is *removed* under the mailbox lock, so no
    /// receiver can ever observe the un-sent message.
    pub fn try_cancel(&mut self, ctx: &CommCtx, dest: u32) -> bool {
        let SendState::InFlight { slot, .. } = &self.state else {
            return false; // eagerly completed at initiation: unrecallable
        };
        let dest_world = ctx.group[dest as usize];
        if !ctx.world.mailbox(dest_world).retract_rendezvous(slot) {
            return false;
        }
        let stats = &ctx.world.stats;
        stats.cancelled_sends.fetch_add(1, Ordering::Relaxed);
        stats.retracted_rts.fetch_add(1, Ordering::Relaxed);
        self.state = SendState::Done;
        true
    }
}

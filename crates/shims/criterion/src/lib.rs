//! Minimal `criterion` shim (no registry access in the build container).
//!
//! Implements the subset of the criterion API the workspace's benches use:
//! `Criterion`, `benchmark_group`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`, and `black_box`.
//! Measurement is a fixed-budget wall-clock loop; results are printed as
//! `<group>/<name>: <ns> ns/iter` and, when `CRITERION_JSON` is set, also
//! appended to that file as JSON lines (used by CI to emit BENCH_*.json).

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark, nanoseconds.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    pub fn new(name: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
        }
        // Measure.
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= MEASURE_BUDGET {
                break;
            }
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn report(group: &str, name: &str, ns: f64) {
    if group.is_empty() {
        println!("{name}: {ns:.1} ns/iter");
    } else {
        println!("{group}/{name}: {ns:.1} ns/iter");
    }
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                f,
                "{{\"group\":\"{group}\",\"bench\":\"{name}\",\"ns_per_iter\":{ns:.1}}}"
            );
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report("", name, b.ns_per_iter);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&self.name, &name.to_string(), b.ns_per_iter);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.ns_per_iter);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.ns_per_iter > 0.0);
    }
}

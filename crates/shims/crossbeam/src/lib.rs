//! Minimal `crossbeam::channel` shim over `std::sync::mpsc` (the build
//! container has no registry access). Only the unbounded-channel subset
//! the workspace uses is provided.

pub mod channel {
    use std::sync::mpsc;

    pub struct Sender<T>(mpsc::Sender<T>);
    // std's Receiver is !Sync; crossbeam's is Sync. Serialize access through
    // a mutex so receiver handles can be shared the way crossbeam allows.
    pub struct Receiver<T>(std::sync::Mutex<mpsc::Receiver<T>>);

    #[derive(Debug)]
    pub struct SendError<T>(pub T);
    #[derive(Debug)]
    pub struct RecvError;

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(std::sync::Mutex::new(rx)))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("receiver poisoned").recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("receiver poisoned").try_recv().map_err(|_| RecvError)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap());
            assert_eq!(rx.recv().unwrap(), 7);
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}

//! Minimal `parking_lot` API shim over `std::sync`.
//!
//! The build container has no registry access, so the workspace provides
//! the subset of the parking_lot API its crates use — `Mutex` (non-poisoning
//! `lock()`), `Condvar` (`wait(&mut guard)`), and `RwLock` — implemented on
//! the std primitives. Poisoned locks are unwrapped: a panic while holding a
//! lock is already fatal to the rank threads that share it.

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        let inner = self.0.wait(inner).unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        assert!(t.join().unwrap());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}

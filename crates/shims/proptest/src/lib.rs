//! Minimal `proptest` shim: deterministic property-based testing without
//! shrinking. The build container has no registry access, so this crate
//! implements exactly the API surface the workspace's tests use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ..) {..} }`
//! * strategies: integer/float ranges, `any::<T>()`, `Just`, tuples,
//!   `prop_oneof!`, `.prop_map`, `.prop_recursive`, `collection::vec`,
//!   `array::uniform4`
//! * assertions: `prop_assert!`, `prop_assert_eq!`
//!
//! Each run explores fresh inputs (time-derived entropy mixed with the
//! test name); a failure prints the `PROPTEST_SEED` value that pins the
//! run for reproduction. There is no shrinking: the failing case's inputs
//! are printed instead.

use std::ops::Range;
use std::sync::Arc;

// --- RNG ---------------------------------------------------------------

/// SplitMix64: small, fast, deterministic.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from the test name so each property gets an
    /// independent, reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        TestRng { state: Self::name_hash(name) }
    }

    /// Seed from an explicit value (fixed-seed stress tests).
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    fn name_hash(name: &str) -> u64 {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        seed
    }

    /// Per-test-run RNG: explores fresh inputs on every run (time-derived
    /// entropy mixed with the test name) unless `PROPTEST_SEED` pins the
    /// run. Returns the rng and the value to export as `PROPTEST_SEED`
    /// to reproduce this exact run.
    pub fn for_test(name: &str) -> (TestRng, u64) {
        let entropy = match std::env::var("PROPTEST_SEED") {
            Ok(v) => {
                let v = v.trim();
                v.strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| v.parse())
                    .expect("PROPTEST_SEED must be a u64 (decimal or 0x-hex)")
            }
            Err(_) => std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0),
        };
        (TestRng { state: Self::name_hash(name) ^ entropy }, entropy)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// --- errors ------------------------------------------------------------

#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

// --- config ------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Case count actually run: the `PROPTEST_CASES` environment variable
    /// overrides whatever the source configured (like real proptest's
    /// env-driven config), so CI can run the same suites at an elevated
    /// count without a rebuild.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .trim()
                .parse()
                .expect("PROPTEST_CASES must be a u32"),
            Err(_) => self.cases,
        }
    }
}

// --- Strategy ----------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + Send + Sync + 'static,
        F: Fn(Self::Value) -> O + Send + Sync + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| f(self.generate(rng))))
    }

    /// Recursive strategies, depth-bounded. `recurse` receives a strategy
    /// producing either a leaf or a shallower recursive value; applying it
    /// `depth` times bounds tree height.
    fn prop_recursive<F, S>(self, depth: u32, _desired_size: u32, _items: u32, recurse: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Send + Sync + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + Send + Sync + 'static,
    {
        let mut strat = self.boxed();
        let leaf = strat.clone();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            let leaf = leaf.clone();
            // Mix in leaves at every level so generated sizes vary.
            strat = BoxedStrategy(Arc::new(move |rng| {
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Send + Sync + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }
}

pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T + Send + Sync>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<T> BoxedStrategy<T> {
    /// Uniform choice among alternatives (the engine behind `prop_oneof!`).
    pub fn union(alternatives: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        assert!(!alternatives.is_empty());
        BoxedStrategy(Arc::new(move |rng| {
            let i = rng.below(alternatives.len() as u64) as usize;
            alternatives[i].generate(rng)
        }))
    }
}

// --- primitive strategies ----------------------------------------------

#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// --- collections --------------------------------------------------------

pub mod collection {
    use super::*;

    /// Anything `vec()` accepts as a length: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use super::*;

    pub struct Uniform4<S>(S);

    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4(element)
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

// --- macros -------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::BoxedStrategy::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($a), stringify!($b), a, b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($a), stringify!($b), format!($($fmt)*), a, b, file!(), line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let (mut rng, seed) =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.effective_cases() {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let desc = || {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));
                        )+
                        s
                    };
                    let inputs = desc();
                    let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(e) = run() {
                        panic!(
                            "proptest case {case} failed: {e}\ninputs:\n{inputs}\
                             set PROPTEST_SEED={seed} to reproduce this run"
                        );
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(-5i32..7), &mut rng);
            assert!((-5..7).contains(&v));
            let u = Strategy::generate(&(0usize..3), &mut rng);
            assert!(u < 3);
            let f = Strategy::generate(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::deterministic("vecs");
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(0i32..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let w = Strategy::generate(&crate::collection::vec(0i32..10, 4), &mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(i32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i32..10).prop_map(T::Leaf).prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(a.into(), b.into()))
        });
        let mut rng = crate::TestRng::deterministic("rec");
        for _ in 0..200 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0i32..100, y in any::<u8>()) {
            prop_assert!(x < 100, "x was {x}");
            prop_assert_eq!(x + y as i32, y as i32 + x);
        }
    }

    /// `PROPTEST_CASES` overrides the source-configured count (the CI
    /// elevated-cases job depends on this). Reads the env var directly
    /// rather than setting it: `set_var` is process-global and would race
    /// the other tests in this binary.
    #[test]
    fn effective_cases_prefers_env_override() {
        let cfg = ProptestConfig::with_cases(7);
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => assert_eq!(cfg.effective_cases(), v.trim().parse::<u32>().unwrap()),
            Err(_) => assert_eq!(cfg.effective_cases(), 7),
        }
    }
}

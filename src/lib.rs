//! Umbrella crate re-exporting the MPIWasm reproduction stack.
pub use hpc_benchmarks as benchmarks;
pub use mpi_substrate as mpi;
pub use mpiwasm as embedder;
pub use netsim;
pub use wasi_layer as wasi;
pub use wasm_engine as wasm;
